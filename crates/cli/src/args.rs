//! Hand-rolled argument parsing.

use olab_core::adaptive::Objective;
use olab_core::Strategy;
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;
use std::error::Error;
use std::fmt;

/// A user-facing CLI error.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<olab_core::ExperimentError> for CliError {
    fn from(e: olab_core::ExperimentError) -> Self {
        CliError(format!("experiment failed: {e}"))
    }
}

/// Shared experiment arguments.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// GPU SKU.
    pub sku: SkuKind,
    /// GPUs in the node.
    pub gpus: usize,
    /// Workload.
    pub model: ModelPreset,
    /// Distribution strategy.
    pub strategy: Strategy,
    /// Batch size (per-rank for FSDP, global otherwise).
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Numeric precision.
    pub precision: Precision,
    /// Matrix-kernel datapath.
    pub datapath: Datapath,
    /// Optional strict power cap, watts.
    pub power_cap: Option<f64>,
    /// Optional clock cap (fraction of boost).
    pub freq_cap: Option<f64>,
    /// Gradient-accumulation micro-steps (FSDP).
    pub grad_accum: u32,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            sku: SkuKind::H100,
            gpus: 4,
            model: ModelPreset::Gpt3_2_7B,
            strategy: Strategy::Fsdp,
            batch: 8,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            power_cap: None,
            freq_cap: None,
            grad_accum: 1,
            csv: false,
        }
    }
}

impl RunArgs {
    /// Builds the experiment these arguments describe.
    pub fn experiment(&self) -> olab_core::Experiment {
        let mut e =
            olab_core::Experiment::new(self.sku, self.gpus, self.model, self.strategy, self.batch)
                .with_seq(self.seq)
                .with_precision(self.precision)
                .with_datapath(self.datapath)
                .with_grad_accum(self.grad_accum);
        if let Some(cap) = self.power_cap {
            e = e.with_power_cap(cap);
        }
        if let Some(f) = self.freq_cap {
            e = e.with_freq_cap(f);
        }
        e
    }
}

/// Sweep-specific arguments: the batch list plus the grid-engine knobs.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Batch sizes to sweep.
    pub batches: Vec<u64>,
    /// Worker threads (`--jobs N`; `1` forces a serial sweep). `None`
    /// defers to `OLAB_JOBS` or `available_parallelism`.
    pub jobs: Option<usize>,
    /// Persistent result-cache directory (`--cache DIR`). `None` defers
    /// to `OLAB_CACHE_DIR` or memory-only caching.
    pub cache: Option<String>,
    /// Live progress + run artifacts (`--observe`).
    pub observe: bool,
    /// Artifact directory for `--observe` (`--out-dir DIR`).
    pub out_dir: Option<String>,
    /// Counter sampling cadence for artifacts, ms of simulated time
    /// (`--sample-ms X`).
    pub sample_ms: f64,
    /// Per-cell wall-clock deadline, seconds (`--cell-timeout-s X`).
    /// `None` defers to `OLAB_CELL_TIMEOUT_S` or no deadline.
    pub cell_timeout_s: Option<f64>,
    /// Per-cell retry budget for transient failures (`--retries N`).
    /// `None` defers to `OLAB_RETRIES` or no retries.
    pub retries: Option<u32>,
    /// Disk-cache byte cap with deterministic eviction
    /// (`--cache-max-bytes N`); requires a disk cache.
    pub cache_max_bytes: Option<u64>,
    /// Engine self-telemetry exposition directory (`--metrics DIR`):
    /// enables the `olab-metrics` registry and writes `metrics.prom` +
    /// `metrics.json` there after the sweep.
    pub metrics: Option<String>,
    /// Restrict the written expositions to deterministic (cross-run)
    /// families only (`--metrics-deterministic`), so CI can byte-compare
    /// the files across schedules directly.
    pub metrics_deterministic: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            batches: Vec::new(),
            jobs: None,
            cache: None,
            observe: false,
            out_dir: None,
            sample_ms: 100.0,
            cell_timeout_s: None,
            retries: None,
            cache_max_bytes: None,
            metrics: None,
            metrics_deterministic: false,
        }
    }
}

/// Faults-sweep arguments: which scenarios to inject and how to react.
#[derive(Debug, Clone)]
pub struct FaultsArgs {
    /// Fault seeds to sweep (`--seeds a,b,c` or a single `--seed N`).
    pub seeds: Vec<u64>,
    /// Severities to sweep (`--severity mild|moderate|severe|all`).
    pub severities: Vec<olab_faults::Severity>,
    /// Abort on watchdog exhaustion instead of degrading
    /// (`--action degrade|abort`).
    pub abort: bool,
    /// Worker threads (`--jobs N`; `1` forces a serial sweep).
    pub jobs: Option<usize>,
    /// Live progress + run artifacts (`--observe`).
    pub observe: bool,
    /// Artifact directory for `--observe` (`--out-dir DIR`).
    pub out_dir: Option<String>,
    /// Counter sampling cadence for artifacts, ms of simulated time
    /// (`--sample-ms X`).
    pub sample_ms: f64,
    /// Recovery policy applied when the watchdog gives up
    /// (`--recovery failfast|ckpt|elastic`; `--ckpt-interval-s X` pins the
    /// checkpoint interval). `None` keeps the plain fault scorecard.
    pub recovery: Option<olab_resilience::RecoveryPolicy>,
    /// Persistent result-cache directory (`--cache DIR`). `None` defers
    /// to `OLAB_CACHE_DIR` or memory-only caching.
    pub cache: Option<String>,
    /// Per-cell wall-clock deadline, seconds (`--cell-timeout-s X`).
    pub cell_timeout_s: Option<f64>,
    /// Per-cell retry budget for transient failures (`--retries N`).
    pub retries: Option<u32>,
    /// Disk-cache byte cap with deterministic eviction
    /// (`--cache-max-bytes N`); requires a disk cache.
    pub cache_max_bytes: Option<u64>,
    /// Engine self-telemetry exposition directory (`--metrics DIR`).
    pub metrics: Option<String>,
    /// Deterministic-families-only expositions (`--metrics-deterministic`).
    pub metrics_deterministic: bool,
}

impl Default for FaultsArgs {
    fn default() -> Self {
        FaultsArgs {
            seeds: vec![1],
            severities: olab_faults::Severity::ALL.to_vec(),
            abort: false,
            jobs: None,
            observe: false,
            out_dir: None,
            sample_ms: 100.0,
            recovery: None,
            cache: None,
            cell_timeout_s: None,
            retries: None,
            cache_max_bytes: None,
            metrics: None,
            metrics_deterministic: false,
        }
    }
}

/// `resilience`-subcommand arguments: the policy-comparison sweep.
#[derive(Debug, Clone)]
pub struct ResilienceArgs {
    /// Fault seeds to sweep (`--seeds a,b,c` or a single `--seed N`).
    pub seeds: Vec<u64>,
    /// Scenario severity (`--severity mild|moderate|severe`).
    pub severity: olab_faults::Severity,
    /// Worker threads (`--jobs N`; `1` forces a serial sweep).
    pub jobs: Option<usize>,
}

impl Default for ResilienceArgs {
    fn default() -> Self {
        ResilienceArgs {
            seeds: vec![3],
            severity: olab_faults::Severity::Severe,
            jobs: None,
        }
    }
}

/// `observe`-subcommand arguments: which cell to observe and where the
/// run artifact goes.
#[derive(Debug, Clone)]
pub struct ObserveArgs {
    /// Named registry cell overriding the shared flags (`--cell fig7`).
    pub cell: Option<String>,
    /// Artifact directory (`--out-dir DIR`). Without it the manifest is
    /// printed to stdout and nothing is written.
    pub out_dir: Option<String>,
    /// Counter sampling cadence, ms of simulated time (`--sample-ms X`).
    pub sample_ms: f64,
    /// Worker threads for the auxiliary runs (`--jobs N`).
    pub jobs: Option<usize>,
    /// Observe the cell under an injected fault scenario
    /// (`--fault-seed N`).
    pub fault_seed: Option<u64>,
    /// Fault severity for `--fault-seed` (`--severity mild|moderate|severe`).
    pub severity: olab_faults::Severity,
    /// Abort on watchdog exhaustion instead of degrading
    /// (`--action degrade|abort`).
    pub abort: bool,
    /// Wall-clock deadline for the observed run, seconds
    /// (`--cell-timeout-s X`).
    pub cell_timeout_s: Option<f64>,
    /// Retry budget for the observed run (`--retries N`).
    pub retries: Option<u32>,
    /// Engine self-telemetry exposition directory (`--metrics DIR`).
    pub metrics: Option<String>,
    /// Deterministic-families-only expositions (`--metrics-deterministic`).
    pub metrics_deterministic: bool,
}

impl Default for ObserveArgs {
    fn default() -> Self {
        ObserveArgs {
            cell: None,
            out_dir: None,
            sample_ms: 100.0,
            jobs: None,
            fault_seed: None,
            severity: olab_faults::Severity::Moderate,
            abort: false,
            cell_timeout_s: None,
            retries: None,
            metrics: None,
            metrics_deterministic: false,
        }
    }
}

/// `olab serve` arguments: socket + engine knobs for the daemon, or a
/// `--oneshot QUERY` offline render for CI byte-comparison.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Listen address (`--addr HOST:PORT`; port `0` picks a free port).
    pub addr: String,
    /// Engine worker threads (`--jobs N`). `None` defers to `OLAB_JOBS`
    /// or `available_parallelism`.
    pub jobs: Option<usize>,
    /// Persistent result-cache directory (`--cache DIR`).
    pub cache: Option<String>,
    /// Disk-cache byte cap (`--cache-max-bytes N`); requires a disk cache.
    pub cache_max_bytes: Option<u64>,
    /// Server-side per-cell deadline, seconds (`--cell-timeout-s X`).
    pub cell_timeout_s: Option<f64>,
    /// Per-cell retry budget (`--retries N`).
    pub retries: Option<u32>,
    /// Admission-queue capacity before shedding (`--max-queue N`).
    pub max_queue: Option<usize>,
    /// HTTP worker threads (`--http-workers N`).
    pub http_workers: Option<usize>,
    /// Drain grace period, seconds (`--drain-timeout-s X`).
    pub drain_timeout_s: Option<f64>,
    /// Coalescing-window hold, ms (`--coalesce-hold-ms N`) — soak/test
    /// instrumentation that keeps a finished flight joinable briefly.
    pub coalesce_hold_ms: Option<u64>,
    /// Metrics exposition directory flushed on drain (`--metrics DIR`).
    pub metrics: Option<String>,
    /// Deterministic-families-only expositions (`--metrics-deterministic`).
    pub metrics_deterministic: bool,
    /// JSONL request-lifecycle log path (`--log FILE`).
    pub log: Option<String>,
    /// Render one cell offline and exit (`--oneshot QUERY`): prints the
    /// byte-identical body the daemon would serve for `/v1/cell?QUERY`.
    pub oneshot: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7979".to_string(),
            jobs: None,
            cache: None,
            cache_max_bytes: None,
            cell_timeout_s: None,
            retries: None,
            max_queue: None,
            http_workers: None,
            drain_timeout_s: None,
            coalesce_hold_ms: None,
            metrics: None,
            metrics_deterministic: false,
            log: None,
            oneshot: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// `olab list`.
    List,
    /// `olab run ...`.
    Run(RunArgs),
    /// `olab sweep ... --batches a,b,c [--jobs N] [--cache DIR]`.
    Sweep(RunArgs, SweepArgs),
    /// `olab trace ... [--interval-ms x]`.
    Trace(RunArgs, f64),
    /// `olab tune ... [--objective latency|energy|edp]`.
    Tune(RunArgs, Objective),
    /// `olab chrome ...` — emit a chrome://tracing JSON timeline.
    Chrome(RunArgs),
    /// `olab faults ... [--seeds a,b] [--severity all] [--action degrade]
    /// [--recovery failfast|ckpt|elastic] [--ckpt-interval-s X]`.
    Faults(RunArgs, FaultsArgs),
    /// `olab resilience ... [--seeds a,b] [--severity severe] [--jobs N]`
    /// — the three-policy recovery comparison table.
    Resilience(RunArgs, ResilienceArgs),
    /// `olab observe ... [--cell fig7] [--out-dir DIR] [--sample-ms 100]`.
    Observe(RunArgs, ObserveArgs),
    /// `olab serve [--addr HOST:PORT] [--jobs N] [--cache DIR] ...` — the
    /// sweep-as-a-service daemon (or `--oneshot QUERY` offline render).
    Serve(ServeArgs),
    /// `olab help` / no arguments.
    Help,
}

/// Parses a SKU name (case-insensitive).
pub fn parse_sku(s: &str) -> Result<SkuKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "a100" => Ok(SkuKind::A100),
        "h100" => Ok(SkuKind::H100),
        "mi210" => Ok(SkuKind::Mi210),
        "mi250" => Ok(SkuKind::Mi250),
        other => Err(CliError(format!(
            "unknown sku '{other}' (expected a100|h100|mi210|mi250)"
        ))),
    }
}

/// Parses a model name.
pub fn parse_model(s: &str) -> Result<ModelPreset, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "gpt3-xl" | "gpt3-1.3b" => Ok(ModelPreset::Gpt3Xl),
        "gpt3-2.7b" => Ok(ModelPreset::Gpt3_2_7B),
        "gpt3-6.7b" => Ok(ModelPreset::Gpt3_6_7B),
        "gpt3-13b" => Ok(ModelPreset::Gpt3_13B),
        "llama2-13b" => Ok(ModelPreset::Llama2_13B),
        other => Err(CliError(format!(
            "unknown model '{other}' (expected gpt3-xl|gpt3-2.7b|gpt3-6.7b|gpt3-13b|llama2-13b)"
        ))),
    }
}

/// Parses a strategy name.
pub fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "fsdp" => Ok(Strategy::Fsdp),
        "pp" | "pipeline" => Ok(Strategy::Pipeline { microbatch_size: 8 }),
        "tp" | "tensor" => Ok(Strategy::TensorParallel),
        other => Err(CliError(format!(
            "unknown strategy '{other}' (expected fsdp|pp|tp)"
        ))),
    }
}

fn parse_precision(s: &str) -> Result<Precision, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "fp16" => Ok(Precision::Fp16),
        "bf16" => Ok(Precision::Bf16),
        "fp32" => Ok(Precision::Fp32),
        "tf32" => Ok(Precision::Tf32),
        other => Err(CliError(format!("unknown precision '{other}'"))),
    }
}

fn parse_datapath(s: &str) -> Result<Datapath, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "tensor" | "tensorcore" => Ok(Datapath::TensorCore),
        "vector" => Ok(Datapath::Vector),
        other => Err(CliError(format!("unknown datapath '{other}'"))),
    }
}

fn parse_severities(s: &str) -> Result<Vec<olab_faults::Severity>, CliError> {
    use olab_faults::Severity;
    match s.to_ascii_lowercase().as_str() {
        "mild" => Ok(vec![Severity::Mild]),
        "moderate" => Ok(vec![Severity::Moderate]),
        "severe" => Ok(vec![Severity::Severe]),
        "all" => Ok(Severity::ALL.to_vec()),
        other => Err(CliError(format!(
            "unknown severity '{other}' (expected mild|moderate|severe|all)"
        ))),
    }
}

fn parse_objective(s: &str) -> Result<Objective, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "latency" => Ok(Objective::Latency),
        "energy" => Ok(Objective::Energy),
        "edp" => Ok(Objective::Edp),
        other => Err(CliError(format!(
            "unknown objective '{other}' (expected latency|energy|edp)"
        ))),
    }
}

fn num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError(format!("{flag}: cannot parse '{value}'")))
}

/// Flag/value pairs left unconsumed by [`parse_run_args`].
type RestPairs<'a> = Vec<(&'a str, &'a str)>;

/// Parses common flags into `RunArgs`, returning unconsumed (flag, value)
/// pairs to the caller.
fn parse_run_args<'a>(pairs: &[(&'a str, &'a str)]) -> Result<(RunArgs, RestPairs<'a>), CliError> {
    let mut args = RunArgs::default();
    let mut rest = Vec::new();
    for &(flag, value) in pairs {
        match flag {
            "--sku" => args.sku = parse_sku(value)?,
            "--gpus" => args.gpus = num(flag, value)?,
            "--model" => args.model = parse_model(value)?,
            "--strategy" => args.strategy = parse_strategy(value)?,
            "--batch" => args.batch = num(flag, value)?,
            "--seq" => args.seq = num(flag, value)?,
            "--precision" => args.precision = parse_precision(value)?,
            "--datapath" => args.datapath = parse_datapath(value)?,
            "--power-cap" => args.power_cap = Some(num(flag, value)?),
            "--freq-cap" => args.freq_cap = Some(num(flag, value)?),
            "--grad-accum" => args.grad_accum = num(flag, value)?,
            "--microbatch" => {
                let size = num(flag, value)?;
                args.strategy = Strategy::Pipeline {
                    microbatch_size: size,
                };
            }
            _ => rest.push((flag, value)),
        }
    }
    Ok((args, rest))
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending flag or value.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };

    // Split "--flag value" pairs; "--csv", "--observe", and
    // "--metrics-deterministic" are bare flags.
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut csv = false;
    let mut observe = false;
    let mut metrics_deterministic = false;
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--csv" {
            csv = true;
            i += 1;
            continue;
        }
        if flag == "--observe" {
            observe = true;
            i += 1;
            continue;
        }
        if flag == "--metrics-deterministic" {
            metrics_deterministic = true;
            i += 1;
            continue;
        }
        if !flag.starts_with("--") {
            return Err(CliError(format!("expected a --flag, got '{flag}'")));
        }
        let Some(value) = argv.get(i + 1) else {
            return Err(CliError(format!("{flag} needs a value")));
        };
        pairs.push((flag, value.as_str()));
        i += 2;
    }

    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            reject_observe("list", observe)?;
            reject_recovery("list", &pairs)?;
            reject_guard("list", &pairs)?;
            reject_metrics("list", &pairs, metrics_deterministic)?;
            Ok(Command::List)
        }
        "run" => {
            reject_observe("run", observe)?;
            reject_recovery("run", &pairs)?;
            reject_guard("run", &pairs)?;
            reject_metrics("run", &pairs, metrics_deterministic)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            reject_unknown(&rest)?;
            Ok(Command::Run(args))
        }
        "sweep" => {
            reject_recovery("sweep", &pairs)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut sweep = SweepArgs {
                batches: vec![8, 16, 32],
                observe,
                ..SweepArgs::default()
            };
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                match flag {
                    "--batches" => {
                        sweep.batches = value
                            .split(',')
                            .map(|v| num("--batches", v.trim()))
                            .collect::<Result<Vec<u64>, _>>()?;
                    }
                    "--jobs" => sweep.jobs = Some(num(flag, value)?),
                    "--cache" => sweep.cache = Some(value.to_string()),
                    "--out-dir" => sweep.out_dir = Some(value.to_string()),
                    "--sample-ms" => sweep.sample_ms = positive_ms(flag, value)?,
                    "--cell-timeout-s" => sweep.cell_timeout_s = Some(positive_secs(flag, value)?),
                    "--retries" => sweep.retries = Some(num(flag, value)?),
                    "--cache-max-bytes" => sweep.cache_max_bytes = Some(num(flag, value)?),
                    "--metrics" => sweep.metrics = Some(value.to_string()),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            require_cache_for_cap(sweep.cache_max_bytes, &sweep.cache)?;
            sweep.metrics_deterministic = metrics_deterministic;
            require_metrics_for_deterministic(metrics_deterministic, &sweep.metrics)?;
            Ok(Command::Sweep(args, sweep))
        }
        "trace" => {
            reject_observe("trace", observe)?;
            reject_recovery("trace", &pairs)?;
            reject_guard("trace", &pairs)?;
            reject_metrics("trace", &pairs, metrics_deterministic)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut interval = 1.0;
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                if flag == "--interval-ms" {
                    interval = num("--interval-ms", value)?;
                } else {
                    unknown.push((flag, value));
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Trace(args, interval))
        }
        "chrome" => {
            reject_observe("chrome", observe)?;
            reject_recovery("chrome", &pairs)?;
            reject_guard("chrome", &pairs)?;
            reject_metrics("chrome", &pairs, metrics_deterministic)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            reject_unknown(&rest)?;
            Ok(Command::Chrome(args))
        }
        "faults" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut faults = FaultsArgs {
                observe,
                ..FaultsArgs::default()
            };
            let mut unknown = Vec::new();
            let mut recovery = None;
            let mut ckpt_interval_s = None;
            for (flag, value) in rest {
                match flag {
                    "--seed" => faults.seeds = vec![num(flag, value)?],
                    "--seeds" => {
                        faults.seeds = value
                            .split(',')
                            .map(|v| num("--seeds", v.trim()))
                            .collect::<Result<Vec<u64>, _>>()?;
                    }
                    "--severity" => faults.severities = parse_severities(value)?,
                    "--action" => faults.abort = parse_action(value)?,
                    "--jobs" => faults.jobs = Some(num(flag, value)?),
                    "--out-dir" => faults.out_dir = Some(value.to_string()),
                    "--sample-ms" => faults.sample_ms = positive_ms(flag, value)?,
                    "--recovery" => recovery = Some(value),
                    "--ckpt-interval-s" => ckpt_interval_s = Some(positive_secs(flag, value)?),
                    "--cache" => faults.cache = Some(value.to_string()),
                    "--cell-timeout-s" => faults.cell_timeout_s = Some(positive_secs(flag, value)?),
                    "--retries" => faults.retries = Some(num(flag, value)?),
                    "--cache-max-bytes" => faults.cache_max_bytes = Some(num(flag, value)?),
                    "--metrics" => faults.metrics = Some(value.to_string()),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            faults.recovery = parse_recovery(recovery, ckpt_interval_s)?;
            require_cache_for_cap(faults.cache_max_bytes, &faults.cache)?;
            faults.metrics_deterministic = metrics_deterministic;
            require_metrics_for_deterministic(metrics_deterministic, &faults.metrics)?;
            Ok(Command::Faults(args, faults))
        }
        "resilience" => {
            reject_observe("resilience", observe)?;
            reject_recovery("resilience", &pairs)?;
            reject_guard("resilience", &pairs)?;
            reject_metrics("resilience", &pairs, metrics_deterministic)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut res = ResilienceArgs::default();
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                match flag {
                    "--seed" => res.seeds = vec![num(flag, value)?],
                    "--seeds" => {
                        res.seeds = value
                            .split(',')
                            .map(|v| num("--seeds", v.trim()))
                            .collect::<Result<Vec<u64>, _>>()?;
                    }
                    "--severity" => {
                        let all = parse_severities(value)?;
                        let [one] = all.as_slice() else {
                            return Err(CliError(
                                "--severity: resilience takes a single severity, not 'all'"
                                    .to_string(),
                            ));
                        };
                        res.severity = *one;
                    }
                    "--jobs" => res.jobs = Some(num(flag, value)?),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Resilience(args, res))
        }
        "observe" => {
            reject_recovery("observe", &pairs)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut obs = ObserveArgs::default();
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                match flag {
                    "--cell" => obs.cell = Some(value.to_ascii_lowercase()),
                    "--out-dir" => obs.out_dir = Some(value.to_string()),
                    "--sample-ms" => obs.sample_ms = positive_ms(flag, value)?,
                    "--jobs" => obs.jobs = Some(num(flag, value)?),
                    "--fault-seed" => obs.fault_seed = Some(num(flag, value)?),
                    "--severity" => {
                        let all = parse_severities(value)?;
                        let [one] = all.as_slice() else {
                            return Err(CliError(
                                "--severity: observe takes a single severity, not 'all'"
                                    .to_string(),
                            ));
                        };
                        obs.severity = *one;
                    }
                    "--action" => obs.abort = parse_action(value)?,
                    "--cell-timeout-s" => obs.cell_timeout_s = Some(positive_secs(flag, value)?),
                    "--retries" => obs.retries = Some(num(flag, value)?),
                    "--metrics" => obs.metrics = Some(value.to_string()),
                    "--cache-max-bytes" => {
                        return Err(CliError(
                            "--cache-max-bytes is not supported by 'observe' \
                             (the cap applies to sweep/faults disk caches)"
                                .to_string(),
                        ))
                    }
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            obs.metrics_deterministic = metrics_deterministic;
            require_metrics_for_deterministic(metrics_deterministic, &obs.metrics)?;
            Ok(Command::Observe(args, obs))
        }
        "tune" => {
            reject_observe("tune", observe)?;
            reject_recovery("tune", &pairs)?;
            reject_guard("tune", &pairs)?;
            reject_metrics("tune", &pairs, metrics_deterministic)?;
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut objective = Objective::Latency;
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                if flag == "--objective" {
                    objective = parse_objective(value)?;
                } else {
                    unknown.push((flag, value));
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Tune(args, objective))
        }
        "serve" => {
            if csv {
                return Err(CliError(
                    "--csv is not supported by 'serve' (responses are JSON lines)".to_string(),
                ));
            }
            reject_observe("serve", observe)?;
            reject_recovery("serve", &pairs)?;
            let mut serve = ServeArgs {
                metrics_deterministic,
                ..ServeArgs::default()
            };
            let mut unknown = Vec::new();
            for &(flag, value) in &pairs {
                match flag {
                    "--addr" => serve.addr = value.to_string(),
                    "--jobs" => serve.jobs = Some(num(flag, value)?),
                    "--cache" => serve.cache = Some(value.to_string()),
                    "--cache-max-bytes" => serve.cache_max_bytes = Some(num(flag, value)?),
                    "--cell-timeout-s" => serve.cell_timeout_s = Some(positive_secs(flag, value)?),
                    "--retries" => serve.retries = Some(num(flag, value)?),
                    "--max-queue" => serve.max_queue = Some(num(flag, value)?),
                    "--http-workers" => serve.http_workers = Some(num(flag, value)?),
                    "--drain-timeout-s" => {
                        serve.drain_timeout_s = Some(positive_secs(flag, value)?)
                    }
                    "--coalesce-hold-ms" => serve.coalesce_hold_ms = Some(num(flag, value)?),
                    "--metrics" => serve.metrics = Some(value.to_string()),
                    "--log" => serve.log = Some(value.to_string()),
                    "--oneshot" => serve.oneshot = Some(value.to_string()),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            require_cache_for_cap(serve.cache_max_bytes, &serve.cache)?;
            require_metrics_for_deterministic(metrics_deterministic, &serve.metrics)?;
            if serve.max_queue == Some(0) {
                return Err(CliError("--max-queue: must be > 0".to_string()));
            }
            if serve.http_workers == Some(0) {
                return Err(CliError("--http-workers: must be > 0".to_string()));
            }
            Ok(Command::Serve(serve))
        }
        other => Err(CliError(format!(
            "unknown command '{other}' \
             (expected run|sweep|trace|tune|chrome|faults|resilience|observe|serve|list|help)"
        ))),
    }
}

/// `--observe` is only meaningful where a sweep runs (sweep, faults).
fn reject_observe(sub: &str, observe: bool) -> Result<(), CliError> {
    if observe {
        return Err(CliError(format!(
            "--observe is not supported by '{sub}' (use sweep, faults, or the observe subcommand)"
        )));
    }
    Ok(())
}

/// Parses `--action degrade|abort` into the `abort` boolean.
fn parse_action(value: &str) -> Result<bool, CliError> {
    match value.to_ascii_lowercase().as_str() {
        "degrade" => Ok(false),
        "abort" => Ok(true),
        other => Err(CliError(format!(
            "unknown action '{other}' (expected degrade|abort)"
        ))),
    }
}

/// Guard/cache-hardening flags only make sense where a grid engine runs
/// (sweep, faults) or a guarded single cell does (observe).
fn reject_guard(sub: &str, pairs: &[(&str, &str)]) -> Result<(), CliError> {
    for &(flag, _) in pairs {
        if flag == "--cell-timeout-s" || flag == "--retries" || flag == "--cache-max-bytes" {
            return Err(CliError(format!(
                "{flag} is not supported by '{sub}' (use sweep, faults, or observe)"
            )));
        }
    }
    Ok(())
}

/// A disk-cache byte cap with nothing on disk to cap is a configuration
/// mistake, not a no-op: `--cache-max-bytes` requires `--cache DIR` or
/// `OLAB_CACHE_DIR`.
fn require_cache_for_cap(cap: Option<u64>, cache: &Option<String>) -> Result<(), CliError> {
    if cap.is_none() || cache.is_some() {
        return Ok(());
    }
    match std::env::var("OLAB_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => Ok(()),
        _ => Err(CliError(
            "--cache-max-bytes requires a disk cache (--cache DIR or OLAB_CACHE_DIR)".to_string(),
        )),
    }
}

/// `--metrics` only makes sense where an engine runs long enough to have
/// telemetry worth exposing (sweep, faults, observe, serve).
fn reject_metrics(sub: &str, pairs: &[(&str, &str)], deterministic: bool) -> Result<(), CliError> {
    if deterministic {
        return Err(CliError(format!(
            "--metrics-deterministic is not supported by '{sub}' \
             (use sweep, faults, observe, or serve)"
        )));
    }
    for &(flag, _) in pairs {
        if flag == "--metrics" {
            return Err(CliError(format!(
                "--metrics is not supported by '{sub}' (use sweep, faults, observe, or serve)"
            )));
        }
    }
    Ok(())
}

/// `--metrics-deterministic` narrows what `--metrics` writes; alone it
/// would be a silent no-op, so it requires an exposition directory.
fn require_metrics_for_deterministic(
    deterministic: bool,
    metrics: &Option<String>,
) -> Result<(), CliError> {
    if deterministic && metrics.is_none() {
        return Err(CliError(
            "--metrics-deterministic requires '--metrics DIR'".to_string(),
        ));
    }
    Ok(())
}

/// `--recovery`/`--ckpt-interval-s` only make sense where faults inject.
fn reject_recovery(sub: &str, pairs: &[(&str, &str)]) -> Result<(), CliError> {
    for &(flag, _) in pairs {
        if flag == "--recovery" || flag == "--ckpt-interval-s" {
            return Err(CliError(format!(
                "{flag} is not supported by '{sub}' (use the faults subcommand; \
                 'resilience' compares every policy)"
            )));
        }
    }
    Ok(())
}

/// Combines `--recovery` and `--ckpt-interval-s` into a policy. The
/// interval only exists under checkpoint/restart, so pinning it under any
/// other policy (or none) is an error rather than a silent no-op.
fn parse_recovery(
    policy: Option<&str>,
    ckpt_interval_s: Option<f64>,
) -> Result<Option<olab_resilience::RecoveryPolicy>, CliError> {
    use olab_resilience::RecoveryPolicy;
    let Some(name) = policy else {
        if ckpt_interval_s.is_some() {
            return Err(CliError(
                "--ckpt-interval-s requires '--recovery ckpt'".to_string(),
            ));
        }
        return Ok(None);
    };
    let policy = match name.to_ascii_lowercase().as_str() {
        "failfast" | "fail-fast" => RecoveryPolicy::FailFast,
        "ckpt" | "checkpoint" => {
            return Ok(Some(RecoveryPolicy::CheckpointRestart {
                interval_s: ckpt_interval_s,
            }))
        }
        "elastic" => RecoveryPolicy::ElasticContinue,
        other => {
            return Err(CliError(format!(
                "unknown recovery policy '{other}' (expected failfast|ckpt|elastic)"
            )))
        }
    };
    if ckpt_interval_s.is_some() {
        return Err(CliError(format!(
            "--ckpt-interval-s requires '--recovery ckpt', not '{name}'"
        )));
    }
    Ok(Some(policy))
}

/// Parses a strictly-positive millisecond value (`--sample-ms`).
fn positive_ms(flag: &str, value: &str) -> Result<f64, CliError> {
    let ms: f64 = num(flag, value)?;
    if !ms.is_finite() || ms <= 0.0 {
        return Err(CliError(format!("{flag}: '{value}' must be > 0")));
    }
    Ok(ms)
}

/// Parses a strictly-positive seconds value (`--ckpt-interval-s`).
fn positive_secs(flag: &str, value: &str) -> Result<f64, CliError> {
    let s: f64 = num(flag, value)?;
    if !s.is_finite() || s <= 0.0 {
        return Err(CliError(format!("{flag}: '{value}' must be > 0")));
    }
    Ok(s)
}

fn reject_unknown(rest: &[(&str, &str)]) -> Result<(), CliError> {
    if let Some((flag, _)) = rest.first() {
        return Err(CliError(format!("unknown flag '{flag}'")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_parses_all_flags() {
        let cmd = parse(&argv(
            "run --sku mi250 --model gpt3-13b --strategy fsdp --batch 16 \
             --seq 512 --precision fp32 --datapath vector --power-cap 300 \
             --freq-cap 0.8 --grad-accum 2 --csv",
        ))
        .unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run");
        };
        assert_eq!(args.sku, SkuKind::Mi250);
        assert_eq!(args.model, ModelPreset::Gpt3_13B);
        assert_eq!(args.batch, 16);
        assert_eq!(args.seq, 512);
        assert_eq!(args.precision, Precision::Fp32);
        assert_eq!(args.datapath, Datapath::Vector);
        assert_eq!(args.power_cap, Some(300.0));
        assert_eq!(args.freq_cap, Some(0.8));
        assert_eq!(args.grad_accum, 2);
        assert!(args.csv);
    }

    #[test]
    fn sweep_parses_batch_list() {
        let cmd = parse(&argv("sweep --sku a100 --batches 4,8,64")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.batches, vec![4, 8, 64]);
        assert_eq!(sweep.jobs, None);
        assert_eq!(sweep.cache, None);
    }

    #[test]
    fn sweep_parses_grid_engine_knobs() {
        let cmd = parse(&argv("sweep --jobs 2 --cache /tmp/olab-cache")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.jobs, Some(2));
        assert_eq!(sweep.cache.as_deref(), Some("/tmp/olab-cache"));
        assert_eq!(sweep.batches, vec![8, 16, 32], "default batch list");
    }

    #[test]
    fn pipeline_microbatch_flag_sets_strategy() {
        let cmd = parse(&argv("run --strategy pp --microbatch 4")).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run");
        };
        assert_eq!(args.strategy, Strategy::Pipeline { microbatch_size: 4 });
    }

    #[test]
    fn empty_argv_is_help() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn unknown_flags_and_values_error_cleanly() {
        assert!(parse(&argv("run --bogus 1")).is_err());
        assert!(parse(&argv("run --sku q100")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --batch")).is_err());
    }

    #[test]
    fn faults_parses_scenario_flags() {
        let cmd = parse(&argv(
            "faults --sku a100 --seeds 3,5 --severity severe --action abort --jobs 2",
        ))
        .unwrap();
        let Command::Faults(args, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(args.sku, SkuKind::A100);
        assert_eq!(faults.seeds, vec![3, 5]);
        assert_eq!(faults.severities, vec![olab_faults::Severity::Severe]);
        assert!(faults.abort);
        assert_eq!(faults.jobs, Some(2));
    }

    #[test]
    fn faults_defaults_sweep_all_severities_for_one_seed() {
        let cmd = parse(&argv("faults")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(faults.seeds, vec![1]);
        assert_eq!(faults.severities.len(), 3);
        assert!(!faults.abort);
        assert!(parse(&argv("faults --severity extreme")).is_err());
        assert!(parse(&argv("faults --action panic")).is_err());
    }

    #[test]
    fn observe_parses_cell_and_artifact_flags() {
        let cmd = parse(&argv(
            "observe --cell fig7 --out-dir /tmp/x --sample-ms 50 --jobs 2",
        ))
        .unwrap();
        let Command::Observe(_, obs) = cmd else {
            panic!("expected observe");
        };
        assert_eq!(obs.cell.as_deref(), Some("fig7"));
        assert_eq!(obs.out_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(obs.sample_ms, 50.0);
        assert_eq!(obs.jobs, Some(2));
        assert!(obs.fault_seed.is_none());
    }

    #[test]
    fn observe_parses_fault_scenarios_and_rejects_bad_values() {
        let cmd = parse(&argv(
            "observe --fault-seed 3 --severity severe --action abort",
        ))
        .unwrap();
        let Command::Observe(_, obs) = cmd else {
            panic!("expected observe");
        };
        assert_eq!(obs.fault_seed, Some(3));
        assert_eq!(obs.severity, olab_faults::Severity::Severe);
        assert!(obs.abort);
        assert!(parse(&argv("observe --severity all")).is_err());
        assert!(parse(&argv("observe --sample-ms 0")).is_err());
        assert!(parse(&argv("observe --sample-ms -5")).is_err());
    }

    #[test]
    fn sweep_and_faults_accept_observe_flags() {
        let cmd = parse(&argv("sweep --observe --out-dir /tmp/s --sample-ms 25")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert!(sweep.observe);
        assert_eq!(sweep.out_dir.as_deref(), Some("/tmp/s"));
        assert_eq!(sweep.sample_ms, 25.0);

        let cmd = parse(&argv("faults --observe")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert!(faults.observe);
        assert_eq!(faults.out_dir, None);
        assert_eq!(faults.sample_ms, 100.0);
    }

    #[test]
    fn observe_flag_is_rejected_on_non_sweep_subcommands() {
        for sub in ["run", "trace", "chrome", "tune", "list"] {
            let err = parse(&argv(&format!("{sub} --observe"))).unwrap_err();
            assert!(err.0.contains("--observe"), "{sub}: {err}");
        }
    }

    #[test]
    fn sweep_and_faults_parse_guard_and_cap_flags() {
        let cmd = parse(&argv(
            "sweep --cache /tmp/olab-c --cell-timeout-s 2.5 --retries 3 --cache-max-bytes 1048576",
        ))
        .unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.cell_timeout_s, Some(2.5));
        assert_eq!(sweep.retries, Some(3));
        assert_eq!(sweep.cache_max_bytes, Some(1_048_576));

        let cmd = parse(&argv(
            "faults --cache /tmp/olab-c --cell-timeout-s 1.5 --retries 2 --cache-max-bytes 4096",
        ))
        .unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(faults.cache.as_deref(), Some("/tmp/olab-c"));
        assert_eq!(faults.cell_timeout_s, Some(1.5));
        assert_eq!(faults.retries, Some(2));
        assert_eq!(faults.cache_max_bytes, Some(4096));

        let cmd = parse(&argv("observe --cell-timeout-s 4 --retries 1")).unwrap();
        let Command::Observe(_, obs) = cmd else {
            panic!("expected observe");
        };
        assert_eq!(obs.cell_timeout_s, Some(4.0));
        assert_eq!(obs.retries, Some(1));
    }

    #[test]
    fn guard_flags_reject_bad_values() {
        for bad in ["0", "-1", "nan", "soon"] {
            assert!(
                parse(&argv(&format!("sweep --cell-timeout-s {bad}"))).is_err(),
                "{bad}"
            );
        }
        assert!(parse(&argv("sweep --retries -1")).is_err());
        assert!(parse(&argv("sweep --cache-max-bytes lots")).is_err());
    }

    #[test]
    fn cache_cap_requires_a_disk_cache() {
        // Only meaningful when OLAB_CACHE_DIR is not set in the test
        // environment (CI runs it clean); with --cache it always parses.
        if std::env::var("OLAB_CACHE_DIR").map_or(true, |v| v.is_empty()) {
            let err = parse(&argv("sweep --cache-max-bytes 4096")).unwrap_err();
            assert!(err.0.contains("--cache-max-bytes requires"), "{err}");
            let err = parse(&argv("faults --cache-max-bytes 4096")).unwrap_err();
            assert!(err.0.contains("--cache-max-bytes requires"), "{err}");
        }
        assert!(parse(&argv("sweep --cache /tmp/c --cache-max-bytes 4096")).is_ok());
    }

    #[test]
    fn guard_flags_are_rejected_on_non_grid_subcommands() {
        for sub in ["run", "trace", "chrome", "tune", "resilience", "list"] {
            for flag in ["--cell-timeout-s 2", "--retries 1", "--cache-max-bytes 9"] {
                let err = parse(&argv(&format!("{sub} {flag}"))).unwrap_err();
                let name = flag.split_whitespace().next().unwrap();
                assert!(err.0.contains(name), "{sub} {flag}: {err}");
            }
        }
        let err = parse(&argv("observe --cache-max-bytes 9")).unwrap_err();
        assert!(err.0.contains("not supported by 'observe'"), "{err}");
    }

    #[test]
    fn metrics_flag_parses_on_telemetry_subcommands() {
        let cmd = parse(&argv("sweep --metrics /tmp/m")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.metrics.as_deref(), Some("/tmp/m"));

        let cmd = parse(&argv("faults --metrics out")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(faults.metrics.as_deref(), Some("out"));

        let cmd = parse(&argv("observe --metrics m")).unwrap();
        let Command::Observe(_, obs) = cmd else {
            panic!("expected observe");
        };
        assert_eq!(obs.metrics.as_deref(), Some("m"));
        assert!(parse(&argv("sweep --metrics")).is_err(), "needs a value");
    }

    #[test]
    fn metrics_flag_is_rejected_on_non_telemetry_subcommands() {
        for sub in ["run", "trace", "chrome", "tune", "resilience", "list"] {
            let err = parse(&argv(&format!("{sub} --metrics /tmp/m"))).unwrap_err();
            assert!(err.0.contains("--metrics"), "{sub}: {err}");
            assert!(
                err.0.contains("sweep, faults, observe, or serve"),
                "{sub}: {err}"
            );
        }
    }

    #[test]
    fn metrics_deterministic_narrows_metrics_on_telemetry_subcommands() {
        let cmd = parse(&argv("sweep --metrics /tmp/m --metrics-deterministic")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert!(sweep.metrics_deterministic);

        let cmd = parse(&argv("faults --metrics-deterministic --metrics m")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert!(faults.metrics_deterministic);

        let cmd = parse(&argv("observe --metrics m --metrics-deterministic")).unwrap();
        let Command::Observe(_, obs) = cmd else {
            panic!("expected observe");
        };
        assert!(obs.metrics_deterministic);

        // Without it, the flag stays off.
        let Command::Sweep(_, sweep) = parse(&argv("sweep --metrics m")).unwrap() else {
            panic!("expected sweep");
        };
        assert!(!sweep.metrics_deterministic);
    }

    #[test]
    fn metrics_deterministic_requires_a_metrics_dir() {
        for sub in ["sweep", "faults", "observe", "serve"] {
            let err = parse(&argv(&format!("{sub} --metrics-deterministic"))).unwrap_err();
            assert!(err.0.contains("requires '--metrics DIR'"), "{sub}: {err}");
        }
    }

    #[test]
    fn metrics_deterministic_is_rejected_on_non_telemetry_subcommands() {
        for sub in ["run", "trace", "chrome", "tune", "resilience", "list"] {
            let err = parse(&argv(&format!("{sub} --metrics-deterministic"))).unwrap_err();
            assert!(err.0.contains("--metrics-deterministic"), "{sub}: {err}");
        }
    }

    #[test]
    fn serve_parses_all_flags() {
        let cmd = parse(&argv(
            "serve --addr 0.0.0.0:8080 --jobs 2 --cache /tmp/c --cache-max-bytes 4096 \
             --cell-timeout-s 2.5 --retries 3 --max-queue 64 --http-workers 8 \
             --drain-timeout-s 10 --coalesce-hold-ms 250 --metrics /tmp/m \
             --metrics-deterministic --log /tmp/serve.jsonl",
        ))
        .unwrap();
        let Command::Serve(serve) = cmd else {
            panic!("expected serve");
        };
        assert_eq!(serve.addr, "0.0.0.0:8080");
        assert_eq!(serve.jobs, Some(2));
        assert_eq!(serve.cache.as_deref(), Some("/tmp/c"));
        assert_eq!(serve.cache_max_bytes, Some(4096));
        assert_eq!(serve.cell_timeout_s, Some(2.5));
        assert_eq!(serve.retries, Some(3));
        assert_eq!(serve.max_queue, Some(64));
        assert_eq!(serve.http_workers, Some(8));
        assert_eq!(serve.drain_timeout_s, Some(10.0));
        assert_eq!(serve.coalesce_hold_ms, Some(250));
        assert_eq!(serve.metrics.as_deref(), Some("/tmp/m"));
        assert!(serve.metrics_deterministic);
        assert_eq!(serve.log.as_deref(), Some("/tmp/serve.jsonl"));
        assert_eq!(serve.oneshot, None);
    }

    #[test]
    fn serve_defaults_and_oneshot() {
        let Command::Serve(serve) = parse(&argv("serve")).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(serve.addr, "127.0.0.1:7979");
        assert_eq!(serve.jobs, None);
        assert!(!serve.metrics_deterministic);

        let Command::Serve(serve) = parse(&argv("serve --oneshot seq=128&batch=2")).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(serve.oneshot.as_deref(), Some("seq=128&batch=2"));
    }

    #[test]
    fn serve_rejects_nonsense() {
        assert!(parse(&argv("serve --csv")).is_err());
        assert!(parse(&argv("serve --observe")).is_err());
        assert!(parse(&argv("serve --recovery ckpt")).is_err());
        assert!(parse(&argv("serve --batches 1,2")).is_err());
        assert!(parse(&argv("serve --max-queue 0")).is_err());
        assert!(parse(&argv("serve --http-workers 0")).is_err());
        assert!(parse(&argv("serve --cell-timeout-s 0")).is_err());
        if std::env::var("OLAB_CACHE_DIR").map_or(true, |v| v.is_empty()) {
            assert!(parse(&argv("serve --cache-max-bytes 4096")).is_err());
        }
    }

    #[test]
    fn tune_parses_objective() {
        let cmd = parse(&argv("tune --sku mi250 --objective energy")).unwrap();
        assert!(matches!(cmd, Command::Tune(_, Objective::Energy)));
    }

    #[test]
    fn faults_parses_recovery_policies() {
        use olab_resilience::RecoveryPolicy;
        let cases = [
            ("failfast", RecoveryPolicy::FailFast),
            (
                "ckpt",
                RecoveryPolicy::CheckpointRestart { interval_s: None },
            ),
            ("elastic", RecoveryPolicy::ElasticContinue),
        ];
        for (name, want) in cases {
            let cmd = parse(&argv(&format!("faults --recovery {name}"))).unwrap();
            let Command::Faults(_, faults) = cmd else {
                panic!("expected faults");
            };
            assert_eq!(faults.recovery, Some(want), "{name}");
        }

        let cmd = parse(&argv("faults --recovery ckpt --ckpt-interval-s 12.5")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(
            faults.recovery,
            Some(RecoveryPolicy::CheckpointRestart {
                interval_s: Some(12.5)
            })
        );

        let Command::Faults(_, faults) = parse(&argv("faults")).unwrap() else {
            panic!("expected faults");
        };
        assert_eq!(faults.recovery, None, "no flag keeps the plain scorecard");
    }

    #[test]
    fn faults_rejects_bad_recovery_combinations() {
        // Non-positive or unparsable checkpoint intervals.
        for bad in ["0", "-3", "nan", "inf", "soon"] {
            let err = parse(&argv(&format!(
                "faults --recovery ckpt --ckpt-interval-s {bad}"
            )))
            .unwrap_err();
            assert!(err.0.contains("--ckpt-interval-s"), "{bad}: {err}");
        }
        // An interval without (or under the wrong) policy is a silent no-op
        // waiting to happen, so it errors instead.
        for prefix in [
            "faults",
            "faults --recovery failfast",
            "faults --recovery elastic",
        ] {
            let err = parse(&argv(&format!("{prefix} --ckpt-interval-s 5"))).unwrap_err();
            assert!(err.0.contains("--recovery ckpt"), "{prefix}: {err}");
        }
        assert!(parse(&argv("faults --recovery heroic")).is_err());
    }

    #[test]
    fn recovery_flags_are_rejected_on_non_fault_subcommands() {
        for sub in [
            "run",
            "sweep",
            "trace",
            "chrome",
            "tune",
            "observe",
            "resilience",
            "list",
        ] {
            let err = parse(&argv(&format!("{sub} --recovery elastic"))).unwrap_err();
            assert!(err.0.contains("--recovery"), "{sub}: {err}");
            let err = parse(&argv(&format!("{sub} --ckpt-interval-s 5"))).unwrap_err();
            assert!(err.0.contains("--ckpt-interval-s"), "{sub}: {err}");
        }
    }

    #[test]
    fn resilience_parses_sweep_flags() {
        let cmd = parse(&argv(
            "resilience --sku a100 --seeds 2,4 --severity moderate --jobs 2 --csv",
        ))
        .unwrap();
        let Command::Resilience(args, res) = cmd else {
            panic!("expected resilience");
        };
        assert_eq!(args.sku, SkuKind::A100);
        assert!(args.csv);
        assert_eq!(res.seeds, vec![2, 4]);
        assert_eq!(res.severity, olab_faults::Severity::Moderate);
        assert_eq!(res.jobs, Some(2));

        let Command::Resilience(_, res) = parse(&argv("resilience --seed 7")).unwrap() else {
            panic!("expected resilience");
        };
        assert_eq!(res.seeds, vec![7]);
        assert_eq!(res.severity, olab_faults::Severity::Severe, "default");

        assert!(parse(&argv("resilience --severity all")).is_err());
        assert!(parse(&argv("resilience --observe")).is_err());
    }
}
