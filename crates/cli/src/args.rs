//! Hand-rolled argument parsing.

use olab_core::adaptive::Objective;
use olab_core::Strategy;
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;
use std::error::Error;
use std::fmt;

/// A user-facing CLI error.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<olab_core::ExperimentError> for CliError {
    fn from(e: olab_core::ExperimentError) -> Self {
        CliError(format!("experiment failed: {e}"))
    }
}

/// Shared experiment arguments.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// GPU SKU.
    pub sku: SkuKind,
    /// GPUs in the node.
    pub gpus: usize,
    /// Workload.
    pub model: ModelPreset,
    /// Distribution strategy.
    pub strategy: Strategy,
    /// Batch size (per-rank for FSDP, global otherwise).
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Numeric precision.
    pub precision: Precision,
    /// Matrix-kernel datapath.
    pub datapath: Datapath,
    /// Optional strict power cap, watts.
    pub power_cap: Option<f64>,
    /// Optional clock cap (fraction of boost).
    pub freq_cap: Option<f64>,
    /// Gradient-accumulation micro-steps (FSDP).
    pub grad_accum: u32,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            sku: SkuKind::H100,
            gpus: 4,
            model: ModelPreset::Gpt3_2_7B,
            strategy: Strategy::Fsdp,
            batch: 8,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            power_cap: None,
            freq_cap: None,
            grad_accum: 1,
            csv: false,
        }
    }
}

impl RunArgs {
    /// Builds the experiment these arguments describe.
    pub fn experiment(&self) -> olab_core::Experiment {
        let mut e =
            olab_core::Experiment::new(self.sku, self.gpus, self.model, self.strategy, self.batch)
                .with_seq(self.seq)
                .with_precision(self.precision)
                .with_datapath(self.datapath)
                .with_grad_accum(self.grad_accum);
        if let Some(cap) = self.power_cap {
            e = e.with_power_cap(cap);
        }
        if let Some(f) = self.freq_cap {
            e = e.with_freq_cap(f);
        }
        e
    }
}

/// Sweep-specific arguments: the batch list plus the grid-engine knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepArgs {
    /// Batch sizes to sweep.
    pub batches: Vec<u64>,
    /// Worker threads (`--jobs N`; `1` forces a serial sweep). `None`
    /// defers to `OLAB_JOBS` or `available_parallelism`.
    pub jobs: Option<usize>,
    /// Persistent result-cache directory (`--cache DIR`). `None` defers
    /// to `OLAB_CACHE_DIR` or memory-only caching.
    pub cache: Option<String>,
}

/// Faults-sweep arguments: which scenarios to inject and how to react.
#[derive(Debug, Clone)]
pub struct FaultsArgs {
    /// Fault seeds to sweep (`--seeds a,b,c` or a single `--seed N`).
    pub seeds: Vec<u64>,
    /// Severities to sweep (`--severity mild|moderate|severe|all`).
    pub severities: Vec<olab_faults::Severity>,
    /// Abort on watchdog exhaustion instead of degrading
    /// (`--action degrade|abort`).
    pub abort: bool,
    /// Worker threads (`--jobs N`; `1` forces a serial sweep).
    pub jobs: Option<usize>,
}

impl Default for FaultsArgs {
    fn default() -> Self {
        FaultsArgs {
            seeds: vec![1],
            severities: olab_faults::Severity::ALL.to_vec(),
            abort: false,
            jobs: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// `olab list`.
    List,
    /// `olab run ...`.
    Run(RunArgs),
    /// `olab sweep ... --batches a,b,c [--jobs N] [--cache DIR]`.
    Sweep(RunArgs, SweepArgs),
    /// `olab trace ... [--interval-ms x]`.
    Trace(RunArgs, f64),
    /// `olab tune ... [--objective latency|energy|edp]`.
    Tune(RunArgs, Objective),
    /// `olab chrome ...` — emit a chrome://tracing JSON timeline.
    Chrome(RunArgs),
    /// `olab faults ... [--seeds a,b] [--severity all] [--action degrade]`.
    Faults(RunArgs, FaultsArgs),
    /// `olab help` / no arguments.
    Help,
}

/// Parses a SKU name (case-insensitive).
pub fn parse_sku(s: &str) -> Result<SkuKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "a100" => Ok(SkuKind::A100),
        "h100" => Ok(SkuKind::H100),
        "mi210" => Ok(SkuKind::Mi210),
        "mi250" => Ok(SkuKind::Mi250),
        other => Err(CliError(format!(
            "unknown sku '{other}' (expected a100|h100|mi210|mi250)"
        ))),
    }
}

/// Parses a model name.
pub fn parse_model(s: &str) -> Result<ModelPreset, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "gpt3-xl" | "gpt3-1.3b" => Ok(ModelPreset::Gpt3Xl),
        "gpt3-2.7b" => Ok(ModelPreset::Gpt3_2_7B),
        "gpt3-6.7b" => Ok(ModelPreset::Gpt3_6_7B),
        "gpt3-13b" => Ok(ModelPreset::Gpt3_13B),
        "llama2-13b" => Ok(ModelPreset::Llama2_13B),
        other => Err(CliError(format!(
            "unknown model '{other}' (expected gpt3-xl|gpt3-2.7b|gpt3-6.7b|gpt3-13b|llama2-13b)"
        ))),
    }
}

/// Parses a strategy name.
pub fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "fsdp" => Ok(Strategy::Fsdp),
        "pp" | "pipeline" => Ok(Strategy::Pipeline { microbatch_size: 8 }),
        "tp" | "tensor" => Ok(Strategy::TensorParallel),
        other => Err(CliError(format!(
            "unknown strategy '{other}' (expected fsdp|pp|tp)"
        ))),
    }
}

fn parse_precision(s: &str) -> Result<Precision, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "fp16" => Ok(Precision::Fp16),
        "bf16" => Ok(Precision::Bf16),
        "fp32" => Ok(Precision::Fp32),
        "tf32" => Ok(Precision::Tf32),
        other => Err(CliError(format!("unknown precision '{other}'"))),
    }
}

fn parse_datapath(s: &str) -> Result<Datapath, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "tensor" | "tensorcore" => Ok(Datapath::TensorCore),
        "vector" => Ok(Datapath::Vector),
        other => Err(CliError(format!("unknown datapath '{other}'"))),
    }
}

fn parse_severities(s: &str) -> Result<Vec<olab_faults::Severity>, CliError> {
    use olab_faults::Severity;
    match s.to_ascii_lowercase().as_str() {
        "mild" => Ok(vec![Severity::Mild]),
        "moderate" => Ok(vec![Severity::Moderate]),
        "severe" => Ok(vec![Severity::Severe]),
        "all" => Ok(Severity::ALL.to_vec()),
        other => Err(CliError(format!(
            "unknown severity '{other}' (expected mild|moderate|severe|all)"
        ))),
    }
}

fn parse_objective(s: &str) -> Result<Objective, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "latency" => Ok(Objective::Latency),
        "energy" => Ok(Objective::Energy),
        "edp" => Ok(Objective::Edp),
        other => Err(CliError(format!(
            "unknown objective '{other}' (expected latency|energy|edp)"
        ))),
    }
}

fn num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError(format!("{flag}: cannot parse '{value}'")))
}

/// Flag/value pairs left unconsumed by [`parse_run_args`].
type RestPairs<'a> = Vec<(&'a str, &'a str)>;

/// Parses common flags into `RunArgs`, returning unconsumed (flag, value)
/// pairs to the caller.
fn parse_run_args<'a>(pairs: &[(&'a str, &'a str)]) -> Result<(RunArgs, RestPairs<'a>), CliError> {
    let mut args = RunArgs::default();
    let mut rest = Vec::new();
    for &(flag, value) in pairs {
        match flag {
            "--sku" => args.sku = parse_sku(value)?,
            "--gpus" => args.gpus = num(flag, value)?,
            "--model" => args.model = parse_model(value)?,
            "--strategy" => args.strategy = parse_strategy(value)?,
            "--batch" => args.batch = num(flag, value)?,
            "--seq" => args.seq = num(flag, value)?,
            "--precision" => args.precision = parse_precision(value)?,
            "--datapath" => args.datapath = parse_datapath(value)?,
            "--power-cap" => args.power_cap = Some(num(flag, value)?),
            "--freq-cap" => args.freq_cap = Some(num(flag, value)?),
            "--grad-accum" => args.grad_accum = num(flag, value)?,
            "--microbatch" => {
                let size = num(flag, value)?;
                args.strategy = Strategy::Pipeline {
                    microbatch_size: size,
                };
            }
            _ => rest.push((flag, value)),
        }
    }
    Ok((args, rest))
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending flag or value.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };

    // Split "--flag value" pairs; "--csv" is a bare flag.
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut csv = false;
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--csv" {
            csv = true;
            i += 1;
            continue;
        }
        if !flag.starts_with("--") {
            return Err(CliError(format!("expected a --flag, got '{flag}'")));
        }
        let Some(value) = argv.get(i + 1) else {
            return Err(CliError(format!("{flag} needs a value")));
        };
        pairs.push((flag, value.as_str()));
        i += 2;
    }

    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            reject_unknown(&rest)?;
            Ok(Command::Run(args))
        }
        "sweep" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut sweep = SweepArgs {
                batches: vec![8, 16, 32],
                ..SweepArgs::default()
            };
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                match flag {
                    "--batches" => {
                        sweep.batches = value
                            .split(',')
                            .map(|v| num("--batches", v.trim()))
                            .collect::<Result<Vec<u64>, _>>()?;
                    }
                    "--jobs" => sweep.jobs = Some(num(flag, value)?),
                    "--cache" => sweep.cache = Some(value.to_string()),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Sweep(args, sweep))
        }
        "trace" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut interval = 1.0;
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                if flag == "--interval-ms" {
                    interval = num("--interval-ms", value)?;
                } else {
                    unknown.push((flag, value));
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Trace(args, interval))
        }
        "chrome" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            reject_unknown(&rest)?;
            Ok(Command::Chrome(args))
        }
        "faults" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut faults = FaultsArgs::default();
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                match flag {
                    "--seed" => faults.seeds = vec![num(flag, value)?],
                    "--seeds" => {
                        faults.seeds = value
                            .split(',')
                            .map(|v| num("--seeds", v.trim()))
                            .collect::<Result<Vec<u64>, _>>()?;
                    }
                    "--severity" => faults.severities = parse_severities(value)?,
                    "--action" => match value.to_ascii_lowercase().as_str() {
                        "degrade" => faults.abort = false,
                        "abort" => faults.abort = true,
                        other => {
                            return Err(CliError(format!(
                                "unknown action '{other}' (expected degrade|abort)"
                            )))
                        }
                    },
                    "--jobs" => faults.jobs = Some(num(flag, value)?),
                    _ => unknown.push((flag, value)),
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Faults(args, faults))
        }
        "tune" => {
            let (mut args, rest) = parse_run_args(&pairs)?;
            args.csv = csv;
            let mut objective = Objective::Latency;
            let mut unknown = Vec::new();
            for (flag, value) in rest {
                if flag == "--objective" {
                    objective = parse_objective(value)?;
                } else {
                    unknown.push((flag, value));
                }
            }
            reject_unknown(&unknown)?;
            Ok(Command::Tune(args, objective))
        }
        other => Err(CliError(format!(
            "unknown command '{other}' (expected run|sweep|trace|tune|chrome|faults|list|help)"
        ))),
    }
}

fn reject_unknown(rest: &[(&str, &str)]) -> Result<(), CliError> {
    if let Some((flag, _)) = rest.first() {
        return Err(CliError(format!("unknown flag '{flag}'")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_parses_all_flags() {
        let cmd = parse(&argv(
            "run --sku mi250 --model gpt3-13b --strategy fsdp --batch 16 \
             --seq 512 --precision fp32 --datapath vector --power-cap 300 \
             --freq-cap 0.8 --grad-accum 2 --csv",
        ))
        .unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run");
        };
        assert_eq!(args.sku, SkuKind::Mi250);
        assert_eq!(args.model, ModelPreset::Gpt3_13B);
        assert_eq!(args.batch, 16);
        assert_eq!(args.seq, 512);
        assert_eq!(args.precision, Precision::Fp32);
        assert_eq!(args.datapath, Datapath::Vector);
        assert_eq!(args.power_cap, Some(300.0));
        assert_eq!(args.freq_cap, Some(0.8));
        assert_eq!(args.grad_accum, 2);
        assert!(args.csv);
    }

    #[test]
    fn sweep_parses_batch_list() {
        let cmd = parse(&argv("sweep --sku a100 --batches 4,8,64")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.batches, vec![4, 8, 64]);
        assert_eq!(sweep.jobs, None);
        assert_eq!(sweep.cache, None);
    }

    #[test]
    fn sweep_parses_grid_engine_knobs() {
        let cmd = parse(&argv("sweep --jobs 2 --cache /tmp/olab-cache")).unwrap();
        let Command::Sweep(_, sweep) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.jobs, Some(2));
        assert_eq!(sweep.cache.as_deref(), Some("/tmp/olab-cache"));
        assert_eq!(sweep.batches, vec![8, 16, 32], "default batch list");
    }

    #[test]
    fn pipeline_microbatch_flag_sets_strategy() {
        let cmd = parse(&argv("run --strategy pp --microbatch 4")).unwrap();
        let Command::Run(args) = cmd else {
            panic!("expected run");
        };
        assert_eq!(args.strategy, Strategy::Pipeline { microbatch_size: 4 });
    }

    #[test]
    fn empty_argv_is_help() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn unknown_flags_and_values_error_cleanly() {
        assert!(parse(&argv("run --bogus 1")).is_err());
        assert!(parse(&argv("run --sku q100")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --batch")).is_err());
    }

    #[test]
    fn faults_parses_scenario_flags() {
        let cmd = parse(&argv(
            "faults --sku a100 --seeds 3,5 --severity severe --action abort --jobs 2",
        ))
        .unwrap();
        let Command::Faults(args, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(args.sku, SkuKind::A100);
        assert_eq!(faults.seeds, vec![3, 5]);
        assert_eq!(faults.severities, vec![olab_faults::Severity::Severe]);
        assert!(faults.abort);
        assert_eq!(faults.jobs, Some(2));
    }

    #[test]
    fn faults_defaults_sweep_all_severities_for_one_seed() {
        let cmd = parse(&argv("faults")).unwrap();
        let Command::Faults(_, faults) = cmd else {
            panic!("expected faults");
        };
        assert_eq!(faults.seeds, vec![1]);
        assert_eq!(faults.severities.len(), 3);
        assert!(!faults.abort);
        assert!(parse(&argv("faults --severity extreme")).is_err());
        assert!(parse(&argv("faults --action panic")).is_err());
    }

    #[test]
    fn tune_parses_objective() {
        let cmd = parse(&argv("tune --sku mi250 --objective energy")).unwrap();
        assert!(matches!(cmd, Command::Tune(_, Objective::Energy)));
    }
}
