//! Subcommand implementations (each returns the text to print).

use crate::args::{
    CliError, FaultsArgs, ObserveArgs, ResilienceArgs, RunArgs, ServeArgs, SweepArgs,
};
use olab_core::adaptive::{tune_fsdp, Objective};
use olab_core::report::{ms, pct, Table};
use olab_core::Sweep;
use olab_gpu::GpuSku;
use olab_models::ModelPreset;
use olab_obs::{JsonlProgress, MultiSink, ObserveConfig, StderrProgress};
use olab_power::Sampler;
use std::fmt::Write as _;
use std::path::Path;

/// `olab help`.
pub fn help() -> String {
    "\
olab — compute/communication-overlap characterization (ISPASS'25 reproduction)

USAGE:
  olab list                                    available SKUs and models
  olab run   [flags]                           one experiment, full metrics
  olab sweep [flags] --batches 8,16,32         batch sweep table
             [--jobs N] [--cache DIR]          parallel workers, result cache
             [--cache-max-bytes N]             disk-cache cap, deterministic eviction
             [--cell-timeout-s X] [--retries N] per-cell deadline and retry budget
             [--observe] [--out-dir DIR]       live progress, per-cell run artifacts
             [--metrics DIR]                   engine self-telemetry (metrics.prom/.json)
  olab trace [flags] [--interval-ms 1]         sampled power trace (CSV-ish)
  olab tune  [flags] [--objective energy]      adaptive overlap search (FSDP)
  olab chrome [flags]                          chrome://tracing JSON timeline
  olab faults [flags] [--seeds 1,2,3]          fault sweep under injected scenarios
              [--severity mild|moderate|severe|all] [--action degrade|abort] [--jobs N]
              [--observe] [--out-dir DIR]      live progress, per-cell run artifacts
              [--recovery failfast|ckpt|elastic] recovery scorecard instead of the
              [--ckpt-interval-s X]              fault table (X pins the ckpt interval)
              [--cache DIR] [--cache-max-bytes N] persistent capped result cache
              [--cell-timeout-s X] [--retries N] per-cell deadline and retry budget
              [--metrics DIR]                  engine self-telemetry (metrics.prom/.json)
  olab resilience [flags] [--seeds 3]          three-policy recovery comparison
              [--severity mild|moderate|severe] (fail-fast vs checkpoint vs elastic)
              [--jobs N]
  olab observe [flags] [--cell fig7]           one observed cell, full run artifact
               [--out-dir DIR] [--sample-ms 100] [--jobs N]
               [--fault-seed N] [--severity mild|moderate|severe] [--action degrade|abort]
               [--cell-timeout-s X] [--retries N] guarded observed run
               [--metrics DIR]                 engine self-telemetry (metrics.prom/.json)
  olab serve [--addr 127.0.0.1:7979]           sweep-as-a-service daemon (HTTP/1.1)
             [--jobs N] [--cache DIR]          engine workers, persistent result cache
             [--cache-max-bytes N]             disk-cache cap, deterministic eviction
             [--cell-timeout-s X] [--retries N] server-side deadline and retry budget
             [--max-queue N] [--http-workers N] admission-queue depth, connection threads
             [--drain-timeout-s X]             graceful-drain grace period
             [--coalesce-hold-ms N]            soak aid: widen the coalescing window
             [--metrics DIR] [--log FILE]      expositions on drain, JSONL lifecycle log
             [--oneshot QUERY]                 print the body /v1/cell?QUERY would
                                               serve, offline, and exit (CI byte-compare)

  --metrics-deterministic (sweep|faults|observe|serve, with --metrics DIR)
      restrict expositions to deterministic families so CI can byte-compare them

FLAGS (shared):
  --sku a100|h100|mi210|mi250     --gpus N             --model gpt3-2.7b|...
  --strategy fsdp|pp|tp           --microbatch N       --batch N
  --seq N                         --precision fp16|bf16|fp32|tf32
  --datapath tensor|vector        --power-cap WATTS    --freq-cap 0.0-1.0
  --grad-accum K                  --csv

An observed cell leaves a self-describing artifact directory:
manifest.json, metrics.csv, counters.csv (simulated NVML series),
trace.json (Perfetto, with counter tracks), events.jsonl.
"
    .to_string()
}

/// `olab list`.
pub fn list() -> String {
    let mut out = String::from("SKUs:\n");
    for sku in GpuSku::all() {
        let _ = writeln!(
            out,
            "  {:6} {:7} {:4} GB, {:6.0} GB/s HBM, {:4.0} W TDP, {:3.0} GB/s/dir links",
            sku.name.to_lowercase(),
            format!("({})", sku.vendor),
            sku.mem_gb,
            sku.mem_bw_gbs,
            sku.tdp_w,
            sku.link_bw_unidir_gbs
        );
    }
    out.push_str("\nModels:\n");
    for preset in ModelPreset::ALL {
        let cfg = preset.config();
        let _ = writeln!(
            out,
            "  {:11} {} ({} layers, hidden {})",
            cli_name(preset),
            preset.param_label(),
            cfg.layers,
            cfg.hidden
        );
    }
    out
}

fn cli_name(preset: ModelPreset) -> &'static str {
    match preset {
        ModelPreset::Gpt3Xl => "gpt3-xl",
        ModelPreset::Gpt3_2_7B => "gpt3-2.7b",
        ModelPreset::Gpt3_6_7B => "gpt3-6.7b",
        ModelPreset::Gpt3_13B => "gpt3-13b",
        ModelPreset::Llama2_13B => "llama2-13b",
    }
}

/// `olab run`.
pub fn run(args: &RunArgs) -> Result<String, CliError> {
    let report = args.experiment().run()?;
    let m = &report.metrics;
    let tdp = report.tdp_w();
    let mut out = format!("{}\n\n", report.experiment.label());
    let _ = writeln!(out, "activation policy    {:?}", report.activation_policy);
    let _ = writeln!(out, "E2E ideal (Eq.4)     {}", ms(m.e2e_ideal_s));
    let _ = writeln!(out, "E2E overlapped       {}", ms(m.e2e_overlapped_s));
    let _ = writeln!(
        out,
        "E2E sequential       {} (Eq.5 derived {})",
        ms(m.e2e_sequential_measured_s),
        ms(m.e2e_sequential_derived_s)
    );
    let _ = writeln!(out, "compute slowdown     {}", pct(m.compute_slowdown));
    let _ = writeln!(out, "overlap ratio        {}", pct(m.overlap_ratio));
    let _ = writeln!(
        out,
        "avg / peak power     {:.0} W ({:.2}x TDP) / {:.0} W ({:.2}x TDP)",
        m.avg_power_w,
        m.avg_power_w / tdp,
        m.peak_power_w,
        m.peak_power_w / tdp
    );
    let _ = writeln!(out, "energy per iter      {:.0} J", m.energy_j);
    Ok(out)
}

/// `olab sweep`.
///
/// Runs the batch sweep on the `olab-grid` engine: cells fan out across
/// `--jobs` workers (default `OLAB_JOBS`, then `available_parallelism`)
/// and repeats are served from the content-addressed cache (persistent
/// under `--cache DIR`, default `OLAB_CACHE_DIR`, else memory-only).
/// Telemetry goes to stderr; the table on stdout stays machine-readable.
pub fn sweep(args: &RunArgs, sweep_args: &SweepArgs) -> Result<String, CliError> {
    enable_metrics(&sweep_args.metrics);
    let mut engine = Sweep::from_env();
    if let Some(jobs) = sweep_args.jobs {
        engine = engine.with_jobs(jobs);
    }
    if let Some(dir) = &sweep_args.cache {
        engine = engine
            .with_disk_cache(dir)
            .map_err(|e| CliError(format!("--cache {dir}: {e}")))?;
    }
    // Flags override the OLAB_* environment the engine was seeded from.
    let mut guard = *engine.guard();
    if let Some(timeout) = sweep_args.cell_timeout_s {
        guard.cell_timeout_s = Some(timeout);
    }
    if let Some(retries) = sweep_args.retries {
        guard.retries = retries;
    }
    engine = engine.with_guard(guard);
    if let Some(cap) = sweep_args.cache_max_bytes {
        engine = engine.with_cache_cap(cap);
    }

    let grid: Vec<_> = sweep_args
        .batches
        .iter()
        .map(|&batch| {
            let mut a = args.clone();
            a.batch = batch;
            a.experiment()
        })
        .collect();
    let sinks = progress_sinks(sweep_args.observe, sweep_args.out_dir.as_deref())?;
    let outcome = if sinks.is_empty() {
        engine.run(&grid)
    } else {
        engine.run_with_progress(&grid, Some(&sinks))
    };
    outcome.log_stats();
    if sweep_args.observe {
        if let Some(dir) = &sweep_args.out_dir {
            let cfg = ObserveConfig {
                sample_ms: sweep_args.sample_ms,
                jobs: 1,
            };
            for (i, exp) in grid.iter().enumerate() {
                match olab_obs::observe_cell(exp, &cfg) {
                    Ok(artifact) => write_artifact(dir, i, &artifact)?,
                    Err(e) => eprintln!("[olab] cell {i} ({}) not observed: {e}", exp.label()),
                }
            }
        }
    }

    let mut table = Table::new([
        "Batch",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "E2E sequential",
        "Peak power",
    ]);
    let tdp = args.sku.sku().tdp_w;
    for (&batch, cell) in sweep_args.batches.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                table.row([
                    batch.to_string(),
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    ms(r.metrics.e2e_sequential_measured_s),
                    format!("{:.2}x TDP", r.metrics.peak_power_w / tdp),
                ]);
            }
            Err(e) => {
                table.row([
                    batch.to_string(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    write_metrics(&sweep_args.metrics, sweep_args.metrics_deterministic)?;
    Ok(if args.csv {
        table.to_csv()
    } else {
        table.to_markdown()
    })
}

/// `olab trace`.
pub fn trace(args: &RunArgs, interval_ms: f64) -> Result<String, CliError> {
    let report = args.experiment().run()?;
    let gpu0 = &report.overlapped.gpus[0];
    let sampler = Sampler::with_interval("cli", interval_ms * 1e-3);
    let sampled = gpu0.power.sample(sampler);
    let tdp = report.tdp_w();
    let in_overlap = |t: f64| gpu0.overlap_windows.iter().any(|&(a, b)| t >= a && t < b);

    let mut out = String::from("t_ms,power_w,power_x_tdp,overlap\n");
    for s in &sampled.samples {
        let _ = writeln!(
            out,
            "{:.3},{:.1},{:.3},{}",
            s.time_s * 1e3,
            s.watts,
            s.watts / tdp,
            u8::from(in_overlap(s.time_s))
        );
    }
    Ok(out)
}

/// `olab chrome`: emit a chrome://tracing timeline of the overlapped run.
pub fn chrome(args: &RunArgs) -> Result<String, CliError> {
    let report = args.experiment().run()?;
    Ok(olab_core::chrome_trace::to_chrome_trace(
        &report.overlapped.trace,
    ))
}

/// `olab faults`: sweep fault scenarios over one experiment and tabulate
/// the scorecard of each `(seed, severity)` cell. With `--recovery` the
/// job reacts to each scenario under the chosen policy and the table
/// becomes a recovery scorecard (goodput, lost work, time-to-recover).
pub fn faults(args: &RunArgs, faults_args: &FaultsArgs) -> Result<String, CliError> {
    use olab_faults::{CachedFaultCell, FaultCell, FaultScenarioSpec};

    enable_metrics(&faults_args.metrics);
    if let Some(policy) = faults_args.recovery {
        return faults_with_recovery(args, faults_args, policy);
    }

    let base = args.experiment();
    let mut cells = Vec::new();
    for &seed in &faults_args.seeds {
        for &severity in &faults_args.severities {
            let spec = if faults_args.abort {
                FaultScenarioSpec::abort(seed, severity)
            } else {
                FaultScenarioSpec::degrade(seed, severity)
            };
            cells.push(FaultCell::new(base.clone(), spec));
        }
    }

    let mut engine = olab_grid::Executor::new();
    if let Some(jobs) = faults_args.jobs {
        engine = engine.with_jobs(jobs);
    }
    engine = harden_executor(engine, faults_args)?;
    let sinks = progress_sinks(faults_args.observe, faults_args.out_dir.as_deref())?;
    let outcome = if sinks.is_empty() {
        engine.run(&cells)
    } else {
        engine.run_with_progress(&cells, Some(&sinks))
    };
    eprintln!("{}", outcome.stats);
    if faults_args.observe {
        if let Some(dir) = &faults_args.out_dir {
            let cfg = ObserveConfig {
                sample_ms: faults_args.sample_ms,
                jobs: 1,
            };
            for (i, cell) in cells.iter().enumerate() {
                match olab_obs::observe_fault_cell(&base, &cell.spec, &cfg) {
                    Ok(artifact) => write_artifact(dir, i, &artifact)?,
                    Err(e) => {
                        eprintln!(
                            "[olab] fault cell {i} ({}) not observed: {e}",
                            cell.spec.descriptor()
                        )
                    }
                }
            }
        }
    }

    let mut table = Table::new([
        "Seed",
        "Severity",
        "E2E fault-free",
        "E2E faulty",
        "Time lost",
        "Stall",
        "Retries",
        "Degraded",
        "ECC",
        "Overlap eff",
    ]);
    for (cell, result) in cells.iter().zip(outcome.outputs) {
        let cached = result.map_err(|p| CliError(format!("faults sweep: {p}")))?;
        let seed = cell.spec.seed.to_string();
        let severity = cell.spec.severity.to_string();
        match cached {
            CachedFaultCell::Ok(m) => table.row([
                seed,
                severity,
                ms(m.fault_free_e2e_s),
                ms(m.faulty_e2e_s),
                ms(m.time_lost_s),
                ms(m.stall_s),
                m.retries.to_string(),
                m.degraded_collectives.to_string(),
                m.ecc_kernels.to_string(),
                pct(m.overlap_efficiency),
            ]),
            CachedFaultCell::Aborted {
                at_s,
                collective,
                retries,
            } => table.row([
                seed,
                severity,
                "-".into(),
                format!("aborted at {}", ms(at_s)),
                "-".into(),
                "-".into(),
                retries.to_string(),
                "-".into(),
                "-".into(),
                format!("'{collective}' unreachable"),
            ]),
            CachedFaultCell::Infeasible(msg) => table.row([
                seed,
                severity,
                msg,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        };
    }
    write_metrics(&faults_args.metrics, faults_args.metrics_deterministic)?;
    Ok(if args.csv {
        table.to_csv()
    } else {
        table.to_markdown()
    })
}

/// The recovery-scorecard columns shared by `faults --recovery` and
/// `resilience` (each prepends its own lead columns).
const RECOVERY_COLUMNS: [&str; 8] = [
    "Done",
    "E2E fault-free",
    "Wall",
    "Goodput",
    "Lost work",
    "TTR",
    "Ckpts",
    "World",
];

/// Renders one cached recovery outcome into the shared scorecard columns.
fn recovery_columns(cached: &olab_resilience::CachedRecoveryCell) -> Vec<String> {
    use olab_resilience::CachedRecoveryCell;
    match cached {
        CachedRecoveryCell::Ok(m) => vec![
            if m.completed { "yes" } else { "KILLED" }.to_string(),
            ms(m.fault_free_e2e_s),
            ms(m.wall_s),
            format!("{:.2}/s", m.goodput_samples_per_s),
            ms(m.lost_work_s),
            ms(m.time_to_recover_s),
            m.checkpoints_written.to_string(),
            m.final_world_size.to_string(),
        ],
        CachedRecoveryCell::Infeasible(msg) => {
            let mut row = vec![msg.clone()];
            row.resize(RECOVERY_COLUMNS.len(), "-".into());
            row
        }
    }
}

/// `olab faults --recovery`: the fault sweep with the job reacting to
/// each scenario under one recovery policy.
fn faults_with_recovery(
    args: &RunArgs,
    faults_args: &FaultsArgs,
    policy: olab_resilience::RecoveryPolicy,
) -> Result<String, CliError> {
    use olab_faults::FaultScenarioSpec;
    use olab_resilience::ResilienceCell;

    let base = args.experiment();
    let mut cells = Vec::new();
    for &seed in &faults_args.seeds {
        for &severity in &faults_args.severities {
            let spec = if faults_args.abort {
                FaultScenarioSpec::abort(seed, severity)
            } else {
                FaultScenarioSpec::degrade(seed, severity)
            };
            cells.push(ResilienceCell::new(base.clone(), spec, policy));
        }
    }

    let mut engine = olab_grid::Executor::new();
    if let Some(jobs) = faults_args.jobs {
        engine = engine.with_jobs(jobs);
    }
    engine = harden_executor(engine, faults_args)?;
    let sinks = progress_sinks(faults_args.observe, faults_args.out_dir.as_deref())?;
    let outcome = if sinks.is_empty() {
        engine.run(&cells)
    } else {
        engine.run_with_progress(&cells, Some(&sinks))
    };
    eprintln!("{}", outcome.stats);
    if faults_args.observe {
        if let Some(dir) = &faults_args.out_dir {
            let cfg = ObserveConfig {
                sample_ms: faults_args.sample_ms,
                jobs: 1,
            };
            for (i, cell) in cells.iter().enumerate() {
                match olab_obs::observe_recovery_cell(&base, &cell.spec, policy, &cfg) {
                    Ok(artifact) => write_artifact(dir, i, &artifact)?,
                    Err(e) => eprintln!(
                        "[olab] recovery cell {i} ({}) not observed: {e}",
                        cell.spec.descriptor()
                    ),
                }
            }
        }
    }

    let mut headers = vec!["Seed", "Severity", "Policy"];
    headers.extend(RECOVERY_COLUMNS);
    let mut table = Table::new(headers);
    for (cell, result) in cells.iter().zip(outcome.outputs) {
        let cached = result.map_err(|p| CliError(format!("faults sweep: {p}")))?;
        let mut row = vec![
            cell.spec.seed.to_string(),
            cell.spec.severity.to_string(),
            policy.name().to_string(),
        ];
        row.extend(recovery_columns(&cached));
        table.row(row);
    }
    write_metrics(&faults_args.metrics, faults_args.metrics_deterministic)?;
    Ok(if args.csv {
        table.to_csv()
    } else {
        table.to_markdown()
    })
}

/// Applies the hardening flags shared by `faults` and
/// `faults --recovery` to a grid executor: `--cache DIR`,
/// `--cell-timeout-s`, `--retries`, `--cache-max-bytes`.
fn harden_executor<V: olab_grid::CacheValue>(
    mut engine: olab_grid::Executor<V>,
    faults_args: &FaultsArgs,
) -> Result<olab_grid::Executor<V>, CliError> {
    if let Some(dir) = &faults_args.cache {
        engine = engine
            .with_disk_cache(dir)
            .map_err(|e| CliError(format!("--cache {dir}: {e}")))?;
    }
    let mut guard = *engine.guard();
    if let Some(timeout) = faults_args.cell_timeout_s {
        guard.cell_timeout_s = Some(timeout);
    }
    if let Some(retries) = faults_args.retries {
        guard.retries = retries;
    }
    engine = engine.with_guard(guard);
    if let Some(cap) = faults_args.cache_max_bytes {
        engine = engine.with_cache_cap(cap);
    }
    Ok(engine)
}

/// `olab resilience`: run every recovery policy against the same fault
/// scenarios and tabulate the comparison — fail-fast (lose everything),
/// auto-interval checkpoint/restart, and elastic shrink-and-continue.
pub fn resilience(args: &RunArgs, res: &ResilienceArgs) -> Result<String, CliError> {
    use olab_faults::FaultScenarioSpec;
    use olab_resilience::policy_grid;

    let base = args.experiment();
    let cells = policy_grid(
        &base,
        |seed| FaultScenarioSpec::abort(seed, res.severity),
        &res.seeds,
    );

    let mut engine = olab_grid::Executor::new();
    if let Some(jobs) = res.jobs {
        engine = engine.with_jobs(jobs);
    }
    let outcome = engine.run(&cells);
    eprintln!("{}", outcome.stats);

    let mut headers = vec!["Seed", "Policy"];
    headers.extend(RECOVERY_COLUMNS);
    let mut table = Table::new(headers);
    for (cell, result) in cells.iter().zip(outcome.outputs) {
        let cached = result.map_err(|p| CliError(format!("resilience sweep: {p}")))?;
        let mut row = vec![cell.spec.seed.to_string(), cell.policy.name().to_string()];
        row.extend(recovery_columns(&cached));
        table.row(row);
    }
    Ok(if args.csv {
        table.to_csv()
    } else {
        table.to_markdown()
    })
}

/// `olab observe`: run one cell with full observability and leave a
/// self-describing artifact directory (manifest, metrics, counter series,
/// Perfetto trace with counter tracks, event log). With `--fault-seed`
/// the cell runs under an injected fault scenario; aborted runs still
/// leave a complete record. Without `--out-dir` the manifest is printed
/// and nothing is written.
pub fn observe(args: &RunArgs, obs: &ObserveArgs) -> Result<String, CliError> {
    use olab_faults::FaultScenarioSpec;

    enable_metrics(&obs.metrics);
    let exp = match obs.cell.as_deref() {
        None => args.experiment(),
        Some("fig7") => olab_core::registry::fig7(),
        Some(other) => {
            return Err(CliError(format!(
                "unknown cell '{other}' (expected fig7, or describe one with the shared flags)"
            )))
        }
    };
    let cfg = ObserveConfig {
        sample_ms: obs.sample_ms,
        jobs: obs.jobs.unwrap_or(1),
    };
    // The observed run executes under the same execution guard as sweep
    // cells: `--cell-timeout-s` bounds it, `--retries` reruns transient
    // failures, and a panic is reported instead of crashing the CLI.
    let guard = olab_grid::GuardConfig {
        cell_timeout_s: obs.cell_timeout_s,
        retries: obs.retries.unwrap_or(0),
        ..olab_grid::GuardConfig::default()
    };
    let report = olab_grid::guard::run_cell(&guard, |_ctx| match obs.fault_seed {
        None => olab_obs::observe_cell(&exp, &cfg).map_err(CliError::from),
        Some(seed) => {
            let spec = if obs.abort {
                FaultScenarioSpec::abort(seed, obs.severity)
            } else {
                FaultScenarioSpec::degrade(seed, obs.severity)
            };
            olab_obs::observe_fault_cell(&exp, &spec, &cfg)
                .map_err(|e| CliError(format!("fault cell failed: {e}")))
        }
    });
    let artifact = match report.result {
        Ok(run) => run?,
        Err(failure) => return Err(CliError(format!("observed run failed: {failure}"))),
    };
    write_metrics(&obs.metrics, obs.metrics_deterministic)?;
    match &obs.out_dir {
        Some(dir) => {
            let paths = artifact
                .write_to(Path::new(dir))
                .map_err(|e| CliError(format!("--out-dir {dir}: {e}")))?;
            let mut out = String::new();
            for p in &paths {
                let _ = writeln!(out, "wrote {}", p.display());
            }
            Ok(out)
        }
        None => Ok(artifact.manifest.to_json() + "\n"),
    }
}

/// Turns on the `olab-metrics` registry when `--metrics DIR` was given,
/// forcing registration of every engine family so the expositions are
/// complete (zeros included) regardless of which paths end up running.
fn enable_metrics(metrics: &Option<String>) {
    if metrics.is_some() {
        olab_metrics::set_enabled(true);
        olab_core::fastpath::touch_metrics();
    }
}

/// Writes `metrics.prom` + `metrics.json` under `--metrics DIR` after the
/// command ran, validating the JSON exposition before anything touches
/// disk (`olab-metrics` is std-only and sits below `fmtutil`, so the
/// well-formedness check lives here). A no-op when the flag was absent.
/// With `--metrics-deterministic` only cross-run-stable families are
/// written, so CI can byte-compare the files across schedules.
fn write_metrics(metrics: &Option<String>, deterministic: bool) -> Result<(), CliError> {
    let Some(dir) = metrics else {
        return Ok(());
    };
    olab_core::fmtutil::validate_json(&olab_metrics::render_json())
        .map_err(|e| CliError(format!("--metrics: malformed exposition: {e}")))?;
    std::fs::create_dir_all(dir).map_err(|e| CliError(format!("--metrics {dir}: {e}")))?;
    let result = if deterministic {
        olab_metrics::write_files_deterministic(Path::new(dir))
    } else {
        olab_metrics::write_files(Path::new(dir))
    };
    result.map_err(|e| CliError(format!("--metrics {dir}: {e}")))
}

/// Builds the live-progress fan-out for `--observe`: a stderr status line
/// plus, when `--out-dir` is given, a `progress.jsonl` stream inside it.
/// The progress feed is wall-clock ordered — it is deliberately outside
/// the determinism guarantee the artifacts carry.
fn progress_sinks(observe: bool, out_dir: Option<&str>) -> Result<MultiSink, CliError> {
    let mut sinks = MultiSink::new();
    if !observe {
        return Ok(sinks);
    }
    sinks.push(Box::new(StderrProgress::new(1)));
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| CliError(format!("--out-dir {dir}: {e}")))?;
        let path = Path::new(dir).join("progress.jsonl");
        let file = std::fs::File::create(&path)
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        sinks.push(Box::new(JsonlProgress::new(file)));
    }
    Ok(sinks)
}

/// Writes one cell's artifact under `DIR/cell-NNN/`.
fn write_artifact(
    dir: &str,
    index: usize,
    artifact: &olab_obs::RunArtifact,
) -> Result<(), CliError> {
    let cell_dir = Path::new(dir).join(format!("cell-{index:03}"));
    artifact
        .write_to(&cell_dir)
        .map_err(|e| CliError(format!("{}: {e}", cell_dir.display())))?;
    Ok(())
}

/// `olab serve` — the sweep-as-a-service daemon, or a one-shot offline
/// render of the body the daemon would serve (`--oneshot QUERY`).
///
/// The daemon blocks until something posts `/v1/drain`, then drains
/// gracefully: no new admissions, every admitted request finished,
/// metrics expositions flushed.
pub fn serve(args: &ServeArgs) -> Result<String, CliError> {
    if let Some(query) = &args.oneshot {
        return olab_serve::oneshot(query).map_err(CliError);
    }
    let mut cfg = olab_serve::ServeConfig {
        addr: args.addr.clone(),
        metrics_deterministic: args.metrics_deterministic,
        ..olab_serve::ServeConfig::default()
    };
    cfg.cache_dir = args.cache.as_ref().map(std::path::PathBuf::from);
    cfg.cache_max_bytes = args.cache_max_bytes;
    cfg.cell_timeout_s = args.cell_timeout_s;
    cfg.metrics_out = args.metrics.as_ref().map(std::path::PathBuf::from);
    cfg.log = args.log.as_ref().map(std::path::PathBuf::from);
    if let Some(jobs) = args.jobs {
        cfg.jobs = jobs;
    }
    if let Some(retries) = args.retries {
        cfg.retries = retries;
    }
    if let Some(depth) = args.max_queue {
        cfg.max_queue = depth;
    }
    if let Some(workers) = args.http_workers {
        cfg.http_workers = workers;
    }
    if let Some(secs) = args.drain_timeout_s {
        cfg.drain_timeout_s = secs;
    }
    if let Some(hold) = args.coalesce_hold_ms {
        cfg.coalesce_hold_ms = hold;
    }
    let handle = olab_serve::start(cfg).map_err(|e| CliError(format!("serve: {e}")))?;
    eprintln!(
        "[olab-serve] listening on http://{} (POST /v1/drain to stop)",
        handle.addr()
    );
    let report = handle.run_until_drained();
    Ok(format!(
        "drained clean; stranded workers: {}\n",
        report.stranded_workers
    ))
}

/// `olab tune`.
pub fn tune(args: &RunArgs, objective: Objective) -> Result<String, CliError> {
    let choice = tune_fsdp(&args.experiment(), objective)?;
    let mut table = Table::new(["Policy", "E2E", "Energy", "Score", "Pick"]);
    for (i, c) in choice.candidates.iter().enumerate() {
        table.row([
            c.policy.to_string(),
            ms(c.report.metrics.e2e_overlapped_s),
            format!("{:.0} J", c.report.metrics.energy_j),
            format!("{:.4}", c.score),
            if i == 0 { "<== best" } else { "" }.to_string(),
        ]);
    }
    let mut out = format!(
        "adaptive overlap search, objective = {objective}\n\n{}",
        if args.csv {
            table.to_csv()
        } else {
            table.to_markdown()
        }
    );
    let _ = writeln!(
        out,
        "\nbest policy '{}' improves {} by {} over always-overlap",
        choice.best().policy,
        objective,
        pct(choice.gain_over_default())
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_mentions_every_subcommand() {
        let h = help();
        for cmd in [
            "run",
            "sweep",
            "trace",
            "tune",
            "faults",
            "resilience",
            "observe",
            "serve",
            "list",
        ] {
            assert!(h.contains(cmd), "{cmd}");
        }
        for flag in [
            "--observe",
            "--out-dir",
            "--sample-ms",
            "--fault-seed",
            "--recovery",
            "--ckpt-interval-s",
            "--cell-timeout-s",
            "--retries",
            "--cache-max-bytes",
            "--metrics",
            "--metrics-deterministic",
            "--addr",
            "--max-queue",
            "--http-workers",
            "--drain-timeout-s",
            "--oneshot",
        ] {
            assert!(h.contains(flag), "{flag}");
        }
    }

    #[test]
    fn list_names_all_skus_and_models() {
        let l = list();
        for name in ["a100", "h100", "mi210", "mi250", "gpt3-13b", "llama2-13b"] {
            assert!(l.contains(name), "{name}");
        }
    }

    #[test]
    fn run_produces_metrics() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let out = run(&args).unwrap();
        assert!(out.contains("compute slowdown"));
        assert!(out.contains("x TDP"));
    }

    fn sweep_args(batches: &[u64]) -> SweepArgs {
        SweepArgs {
            batches: batches.to_vec(),
            jobs: Some(2),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_renders_one_row_per_batch() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let out = sweep(&args, &sweep_args(&[4, 8])).unwrap();
        assert_eq!(out.lines().count(), 4, "header + separator + 2 rows");
    }

    #[test]
    fn sweep_with_guard_and_capped_cache_matches_plain_sweep() {
        let dir = temp_dir("sweep-guarded");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let mut hardened = sweep_args(&[4, 8]);
        hardened.cache = Some(dir.display().to_string());
        hardened.cache_max_bytes = Some(1_000_000);
        hardened.cell_timeout_s = Some(120.0);
        hardened.retries = Some(2);
        assert_eq!(
            sweep(&args, &hardened).unwrap(),
            sweep(&args, &sweep_args(&[4, 8])).unwrap(),
            "guards and a generous cap must not change results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_serial_and_parallel_render_identically() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let mut serial = sweep_args(&[4, 8, 16]);
        serial.jobs = Some(1);
        let parallel = sweep_args(&[4, 8, 16]);
        assert_eq!(
            sweep(&args, &serial).unwrap(),
            sweep(&args, &parallel).unwrap()
        );
    }

    #[test]
    fn sweep_uses_the_disk_cache_dir() {
        let dir = std::env::temp_dir().join(format!("olab-cli-cache-{}", std::process::id()));
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let mut with_cache = sweep_args(&[4]);
        with_cache.cache = Some(dir.display().to_string());
        let out = sweep(&args, &with_cache).unwrap();
        assert_eq!(out.lines().count(), 3, "header + separator + 1 row");
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert!(entries > 0, "cache dir has entries");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_is_csv_with_overlap_column() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let out = trace(&args, 5.0).unwrap();
        assert!(out.starts_with("t_ms,power_w"));
        assert!(out.lines().count() > 3);
    }

    #[test]
    fn chrome_emits_json() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let out = chrome(&args).unwrap();
        assert!(out.trim_start().starts_with('['));
        assert!(out.contains("\"ph\": \"X\""));
    }

    #[test]
    fn faults_renders_one_row_per_scenario() {
        let args = RunArgs {
            seq: 256,
            model: olab_models::ModelPreset::Gpt3Xl,
            ..Default::default()
        };
        let faults_args = FaultsArgs {
            seeds: vec![1, 2],
            severities: vec![olab_faults::Severity::Mild, olab_faults::Severity::Severe],
            jobs: Some(2),
            ..Default::default()
        };
        let out = faults(&args, &faults_args).unwrap();
        assert_eq!(out.lines().count(), 6, "header + separator + 4 rows");
        assert!(out.contains("severe"));
    }

    #[test]
    fn faults_serial_and_parallel_render_identically() {
        let args = RunArgs {
            seq: 256,
            model: olab_models::ModelPreset::Gpt3Xl,
            ..Default::default()
        };
        let mut serial = FaultsArgs {
            seeds: vec![7],
            ..Default::default()
        };
        serial.jobs = Some(1);
        let mut parallel = serial.clone();
        parallel.jobs = Some(4);
        assert_eq!(
            faults(&args, &serial).unwrap(),
            faults(&args, &parallel).unwrap()
        );
    }

    fn small_args() -> RunArgs {
        RunArgs {
            seq: 256,
            model: olab_models::ModelPreset::Gpt3Xl,
            ..Default::default()
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("olab-cli-{tag}-{}", std::process::id()))
    }

    #[test]
    fn observe_writes_a_complete_artifact_dir() {
        let dir = temp_dir("observe");
        let _ = std::fs::remove_dir_all(&dir);
        let obs = ObserveArgs {
            out_dir: Some(dir.display().to_string()),
            sample_ms: 10.0,
            ..Default::default()
        };
        let out = observe(&small_args(), &obs).unwrap();
        for name in olab_obs::ARTIFACT_FILES {
            assert!(out.contains(name), "output mentions {name}");
            let meta = std::fs::metadata(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(meta.len() > 0, "{name} is empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_fault_cell_leaves_a_record() {
        let dir = temp_dir("observe-fault");
        let _ = std::fs::remove_dir_all(&dir);
        let obs = ObserveArgs {
            out_dir: Some(dir.display().to_string()),
            sample_ms: 10.0,
            fault_seed: Some(2),
            severity: olab_faults::Severity::Severe,
            ..Default::default()
        };
        observe(&small_args(), &obs).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"fault\""));
        assert!(manifest.contains("\"seed\": 2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_without_out_dir_prints_the_manifest() {
        let obs = ObserveArgs {
            sample_ms: 10.0,
            ..Default::default()
        };
        let out = observe(&small_args(), &obs).unwrap();
        assert!(out.contains("\"kind\": \"experiment\""));
        assert!(out.contains("\"sample_ms\": 10"));
    }

    #[test]
    fn observe_rejects_unknown_cells() {
        let obs = ObserveArgs {
            cell: Some("fig99".to_string()),
            ..Default::default()
        };
        assert!(observe(&small_args(), &obs).is_err());
    }

    #[test]
    fn sweep_observe_writes_progress_and_cell_artifacts() {
        let dir = temp_dir("sweep-observe");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sa = sweep_args(&[4, 8]);
        sa.observe = true;
        sa.out_dir = Some(dir.display().to_string());
        sa.sample_ms = 10.0;
        sweep(&small_args(), &sa).unwrap();
        let progress = std::fs::read_to_string(dir.join("progress.jsonl")).unwrap();
        assert_eq!(progress.lines().count(), 2);
        for cell in ["cell-000", "cell-001"] {
            for name in olab_obs::ARTIFACT_FILES {
                assert!(dir.join(cell).join(name).exists(), "{cell}/{name}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_observe_writes_cell_artifacts() {
        let dir = temp_dir("faults-observe");
        let _ = std::fs::remove_dir_all(&dir);
        let fa = FaultsArgs {
            seeds: vec![1],
            severities: vec![olab_faults::Severity::Mild],
            jobs: Some(1),
            observe: true,
            out_dir: Some(dir.display().to_string()),
            sample_ms: 10.0,
            ..Default::default()
        };
        faults(&small_args(), &fa).unwrap();
        assert!(dir.join("progress.jsonl").exists());
        let manifest = std::fs::read_to_string(dir.join("cell-000/manifest.json")).unwrap();
        assert!(manifest.contains("\"fault\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_reports_a_best_policy() {
        let args = RunArgs {
            seq: 256,
            ..Default::default()
        };
        let out = tune(&args, Objective::Latency).unwrap();
        assert!(out.contains("<== best"));
    }

    #[test]
    fn faults_with_recovery_renders_the_recovery_scorecard() {
        let fa = FaultsArgs {
            seeds: vec![3],
            severities: vec![olab_faults::Severity::Severe],
            abort: true,
            jobs: Some(1),
            recovery: Some(olab_resilience::RecoveryPolicy::ElasticContinue),
            ..Default::default()
        };
        let out = faults(&small_args(), &fa).unwrap();
        assert_eq!(out.lines().count(), 3, "header + separator + 1 row:\n{out}");
        assert!(out.contains("Goodput"), "{out}");
        assert!(out.contains("elastic"), "{out}");
        assert!(out.contains("yes"), "elastic survives the kill:\n{out}");
        assert!(out.contains(" 3"), "world shrinks to 3 ranks:\n{out}");
    }

    #[test]
    fn resilience_compares_all_three_policies_per_seed() {
        let res = ResilienceArgs {
            seeds: vec![3, 5],
            severity: olab_faults::Severity::Severe,
            jobs: Some(2),
        };
        let out = resilience(&small_args(), &res).unwrap();
        assert_eq!(
            out.lines().count(),
            8,
            "header + separator + 6 rows:\n{out}"
        );
        for policy in ["failfast", "ckpt", "elastic"] {
            assert!(out.contains(policy), "{policy}:\n{out}");
        }
    }

    /// The acceptance check: on a cell whose scenario kills a rank,
    /// elastic continuation lands strictly between fail-fast death
    /// (goodput zero) and the fault-free run (wall above the fault-free
    /// makespan, so the rate is strictly below the healthy one).
    #[test]
    fn resilience_ranks_elastic_between_death_and_fault_free() {
        let mut args = small_args();
        args.csv = true;
        let res = ResilienceArgs {
            seeds: vec![3],
            severity: olab_faults::Severity::Severe,
            jobs: Some(1),
        };
        let out = resilience(&args, &res).unwrap();
        let field = |policy: &str, idx: usize| -> String {
            let line = out
                .lines()
                .find(|l| l.split(',').nth(1) == Some(policy))
                .unwrap_or_else(|| panic!("no {policy} row in:\n{out}"));
            line.split(',').nth(idx).unwrap().to_string()
        };
        let goodput =
            |policy: &str| -> f64 { field(policy, 5).trim_end_matches("/s").parse().unwrap() };
        let millis = |policy: &str, idx: usize| -> f64 {
            field(policy, idx).trim_end_matches(" ms").parse().unwrap()
        };
        assert!(field("failfast", 2).contains("KILLED"), "{out}");
        assert_eq!(goodput("failfast"), 0.0, "a killed job commits nothing");
        assert!(goodput("elastic") > 0.0, "{out}");
        let fault_free = millis("elastic", 3);
        let wall = millis("elastic", 4);
        assert!(
            wall > fault_free,
            "recovered wall {wall} ms must exceed fault-free {fault_free} ms, \
             so elastic goodput sits strictly below the healthy rate:\n{out}"
        );
        assert_eq!(field("elastic", 9), "3", "world shrinks to 3:\n{out}");
    }

    #[test]
    fn resilience_serial_and_parallel_render_identically() {
        let res_serial = ResilienceArgs {
            seeds: vec![3],
            severity: olab_faults::Severity::Severe,
            jobs: Some(1),
        };
        let mut res_parallel = res_serial.clone();
        res_parallel.jobs = Some(4);
        assert_eq!(
            resilience(&small_args(), &res_serial).unwrap(),
            resilience(&small_args(), &res_parallel).unwrap()
        );
    }

    #[test]
    fn faults_recovery_observe_writes_resilience_artifacts() {
        let dir = temp_dir("faults-recovery-observe");
        let _ = std::fs::remove_dir_all(&dir);
        let fa = FaultsArgs {
            seeds: vec![3],
            severities: vec![olab_faults::Severity::Severe],
            abort: true,
            jobs: Some(1),
            observe: true,
            out_dir: Some(dir.display().to_string()),
            sample_ms: 10.0,
            recovery: Some(olab_resilience::RecoveryPolicy::ElasticContinue),
            ..Default::default()
        };
        faults(&small_args(), &fa).unwrap();
        let manifest = std::fs::read_to_string(dir.join("cell-000/manifest.json")).unwrap();
        assert!(manifest.contains("\"kind\": \"resilience\""), "{manifest}");
        assert!(manifest.contains("policy=elastic"), "{manifest}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
