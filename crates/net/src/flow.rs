//! Max-min fair bandwidth sharing between concurrent flows.

use crate::{Topology, TopologyKind};
use olab_sim::GpuId;

/// One point-to-point flow with a bandwidth demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending GPU.
    pub src: GpuId,
    /// Receiving GPU.
    pub dst: GpuId,
    /// Demand in GB/s (`f64::INFINITY` for "as fast as possible").
    pub demand_gbs: f64,
}

impl Flow {
    /// A flow that takes as much bandwidth as the fabric will give it.
    pub fn saturating(src: GpuId, dst: GpuId) -> Self {
        Flow {
            src,
            dst,
            demand_gbs: f64::INFINITY,
        }
    }
}

/// Computes max-min fair rates (GB/s) for a set of concurrent flows.
///
/// Capacity constraints are the per-GPU injection and ejection ports (both
/// fabrics) plus per-link capacity on mesh fabrics. Uses progressive
/// water-filling: repeatedly find the most-contended unsaturated resource,
/// freeze the flows it bottlenecks at their fair share, and continue.
///
/// # Panics
///
/// Panics if a flow references an endpoint outside the topology or has
/// `src == dst`.
pub fn share_bandwidth(topology: &Topology, flows: &[Flow]) -> Vec<f64> {
    let n = topology.n_gpus();
    for f in flows {
        assert!(f.src != f.dst, "flow endpoints must differ");
        assert!(
            f.src.index() < n && f.dst.index() < n,
            "flow endpoint out of range"
        );
    }

    // Resource ids: 0..n injection, n..2n ejection, then mesh links, then
    // per-node NIC egress/ingress (two-level fabrics).
    let per_link = match topology.kind() {
        TopologyKind::Switched | TopologyKind::TwoLevel => f64::INFINITY,
        TopologyKind::FullMesh => topology.injection_bw_gbs() / (n as f64 - 1.0),
    };
    let link_id = |a: usize, b: usize| -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        2 * n + lo * n + hi
    };
    let n_nodes = n / topology.gpus_per_node().max(1);
    let nic_egress = |node: usize| -> usize { 2 * n + n * n + node };
    let nic_ingress = |node: usize| -> usize { 2 * n + n * n + n_nodes + node };
    let n_resources = 2 * n + n * n + 2 * n_nodes;
    let mut capacity = vec![f64::INFINITY; n_resources];
    for g in 0..n {
        capacity[g] = topology.injection_bw_gbs();
        capacity[n + g] = topology.injection_bw_gbs();
    }
    if topology.kind() == TopologyKind::FullMesh {
        for a in 0..n {
            for b in (a + 1)..n {
                capacity[link_id(a, b)] = per_link;
            }
        }
    }
    if topology.kind() == TopologyKind::TwoLevel {
        for node in 0..n_nodes {
            capacity[nic_egress(node)] = topology.nic_bw_gbs();
            capacity[nic_ingress(node)] = topology.nic_bw_gbs();
        }
    }

    let flow_resources: Vec<Vec<usize>> = flows
        .iter()
        .map(|f| {
            let mut r = vec![f.src.index(), n + f.dst.index()];
            if topology.kind() == TopologyKind::FullMesh {
                r.push(link_id(f.src.index(), f.dst.index()));
            }
            if topology.kind() == TopologyKind::TwoLevel
                && topology.node_of(f.src) != topology.node_of(f.dst)
            {
                r.push(nic_egress(topology.node_of(f.src)));
                r.push(nic_ingress(topology.node_of(f.dst)));
            }
            r
        })
        .collect();

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut remaining: Vec<f64> = capacity.clone();

    loop {
        // Flows still unfrozen and not demand-satisfied.
        let active: Vec<usize> = (0..flows.len()).filter(|&i| !frozen[i]).collect();
        if active.is_empty() {
            break;
        }

        // Fair share at the tightest resource among active flows.
        let mut best_share = f64::INFINITY;
        for (r, &rem) in remaining.iter().enumerate().take(n_resources) {
            if rem.is_infinite() {
                continue;
            }
            let users = active
                .iter()
                .filter(|&&i| flow_resources[i].contains(&r))
                .count();
            if users > 0 {
                best_share = best_share.min(rem / users as f64);
            }
        }

        // Demand-limited flows finish first if their demand is below the share.
        let min_demand = active
            .iter()
            .map(|&i| flows[i].demand_gbs)
            .fold(f64::INFINITY, f64::min);

        if min_demand < best_share {
            for &i in &active {
                if flows[i].demand_gbs <= min_demand + 1e-12 {
                    rates[i] = flows[i].demand_gbs;
                    frozen[i] = true;
                    for &r in &flow_resources[i] {
                        if remaining[r].is_finite() {
                            remaining[r] -= rates[i];
                        }
                    }
                }
            }
            continue;
        }

        if best_share.is_infinite() {
            // No finite constraint: grant demands (possibly infinite — treat
            // as injection bandwidth to stay physical).
            for &i in &active {
                rates[i] = flows[i].demand_gbs.min(topology.injection_bw_gbs());
                frozen[i] = true;
            }
            break;
        }

        // Freeze the flows crossing the bottleneck at the fair share.
        let mut bottleneck = None;
        for (r, &rem) in remaining.iter().enumerate().take(n_resources) {
            if rem.is_infinite() {
                continue;
            }
            let users = active
                .iter()
                .filter(|&&i| flow_resources[i].contains(&r))
                .count();
            if users > 0 && (rem / users as f64 - best_share).abs() < 1e-9 {
                bottleneck = Some(r);
                break;
            }
        }
        let r = bottleneck.expect("a finite bottleneck exists");
        for &i in &active {
            if flow_resources[i].contains(&r) {
                rates[i] = best_share.min(flows[i].demand_gbs);
                frozen[i] = true;
                for &res in &flow_resources[i] {
                    if remaining[res].is_finite() {
                        remaining[res] = (remaining[res] - rates[i]).max(0.0);
                    }
                }
            }
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_port_bandwidth() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        let rates = share_bandwidth(&t, &[Flow::saturating(GpuId(0), GpuId(1))]);
        assert!((rates[0] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_from_one_source_split_the_injection_port() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        let rates = share_bandwidth(
            &t,
            &[
                Flow::saturating(GpuId(0), GpuId(1)),
                Flow::saturating(GpuId(0), GpuId(2)),
            ],
        );
        assert!((rates[0] - 150.0).abs() < 1e-9);
        assert!((rates[1] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        let rates = share_bandwidth(
            &t,
            &[
                Flow::saturating(GpuId(0), GpuId(1)),
                Flow::saturating(GpuId(2), GpuId(3)),
            ],
        );
        assert!(rates.iter().all(|&r| (r - 300.0).abs() < 1e-9));
    }

    #[test]
    fn mesh_flows_are_limited_by_their_link() {
        let t = Topology::full_mesh(4, 150.0, 6.0);
        let rates = share_bandwidth(&t, &[Flow::saturating(GpuId(0), GpuId(1))]);
        assert!((rates[0] - 50.0).abs() < 1e-9, "one link of 150/3 GB/s");
    }

    #[test]
    fn mesh_source_can_saturate_all_links_in_parallel() {
        let t = Topology::full_mesh(4, 150.0, 6.0);
        let flows: Vec<Flow> = (1..4)
            .map(|d| Flow::saturating(GpuId(0), GpuId(d)))
            .collect();
        let rates = share_bandwidth(&t, &flows);
        let total: f64 = rates.iter().sum();
        assert!((total - 150.0).abs() < 1e-6, "aggregate {total}");
    }

    #[test]
    fn demand_limited_flows_release_bandwidth_to_others() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        let rates = share_bandwidth(
            &t,
            &[
                Flow {
                    src: GpuId(0),
                    dst: GpuId(1),
                    demand_gbs: 50.0,
                },
                Flow::saturating(GpuId(0), GpuId(2)),
            ],
        );
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 250.0).abs() < 1e-9);
    }

    #[test]
    fn many_to_one_is_limited_by_the_ejection_port() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        let flows: Vec<Flow> = (1..4)
            .map(|s| Flow::saturating(GpuId(s), GpuId(0)))
            .collect();
        let rates = share_bandwidth(&t, &flows);
        for r in &rates {
            assert!((r - 100.0).abs() < 1e-6, "rate {r}");
        }
    }

    #[test]
    fn cross_node_flows_share_the_nic() {
        let t = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        // Two cross-node flows from different sources share node 0's NIC.
        let rates = share_bandwidth(
            &t,
            &[
                Flow::saturating(GpuId(0), GpuId(4)),
                Flow::saturating(GpuId(1), GpuId(5)),
            ],
        );
        for r in &rates {
            assert!((r - 25.0).abs() < 1e-6, "rate {r}");
        }
        // Intra-node traffic is unaffected by the NIC.
        let rates = share_bandwidth(&t, &[Flow::saturating(GpuId(0), GpuId(1))]);
        assert!((rates[0] - 450.0).abs() < 1e-6);
    }

    #[test]
    fn no_flows_yields_no_rates() {
        let t = Topology::nvswitch(2, 100.0, 5.0);
        assert!(share_bandwidth(&t, &[]).is_empty());
    }
}
