//! Interconnect topologies.

use olab_sim::GpuId;
use std::fmt;

/// The organization of the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// NVSwitch-style: full-bandwidth any-to-any through a switch plane.
    Switched,
    /// Infinity-Fabric-style: a dedicated link between every GPU pair.
    FullMesh,
    /// Multi-node: switched intra-node fabric plus a per-node NIC
    /// (InfiniBand/RoCE class) between nodes.
    TwoLevel,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Switched => write!(f, "switched"),
            TopologyKind::FullMesh => write!(f, "full-mesh"),
            TopologyKind::TwoLevel => write!(f, "two-level"),
        }
    }
}

/// An undirected fabric link between two endpoints, stored smaller id
/// first so `Link::new(a, b) == Link::new(b, a)`. Fault scenarios use
/// links to name what degrades or dies; healthy topologies never need
/// them (all pairs are reachable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    a: GpuId,
    b: GpuId,
}

impl Link {
    /// The link between two distinct endpoints (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn new(x: GpuId, y: GpuId) -> Self {
        assert!(x != y, "a link needs distinct endpoints");
        if x.index() <= y.index() {
            Link { a: x, b: y }
        } else {
            Link { a: y, b: x }
        }
    }

    /// The two endpoints, smaller id first.
    pub fn endpoints(&self) -> (GpuId, GpuId) {
        (self.a, self.b)
    }

    /// Whether `gpu` is one of the endpoints.
    pub fn touches(&self, gpu: GpuId) -> bool {
        self.a == gpu || self.b == gpu
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}<->gpu{}", self.a.index(), self.b.index())
    }
}

/// The links a ring over `group` crosses: consecutive pairs of the sorted
/// ranks plus the wrap-around closure (collective libraries build rings in
/// rank order). A two-rank group yields the single pair once.
pub fn ring_links(group: &[GpuId]) -> Vec<Link> {
    let mut ranks: Vec<GpuId> = group.to_vec();
    ranks.sort_unstable_by_key(|g| g.index());
    ranks.dedup();
    if ranks.len() < 2 {
        return Vec::new();
    }
    if ranks.len() == 2 {
        return vec![Link::new(ranks[0], ranks[1])];
    }
    (0..ranks.len())
        .map(|i| Link::new(ranks[i], ranks[(i + 1) % ranks.len()]))
        .collect()
}

/// Lanes a switched-fabric port is striped across (NVLink-style bonded
/// sublinks): losing one lane costs `1/SWITCHED_PORT_LANES` of the port.
const SWITCHED_PORT_LANES: f64 = 12.0;

/// Rails per node NIC on two-level fabrics (dual-rail assumption): a dead
/// cross-node link halves the surviving NIC bandwidth.
const NIC_RAILS: f64 = 2.0;

/// A GPU interconnect (single node, or multi-node for the scale-out
/// extension).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    n_gpus: usize,
    /// Per-GPU aggregate unidirectional bandwidth, GB/s.
    injection_gbs: f64,
    /// Hop latency, microseconds.
    latency_us: f64,
    /// Two-level only: GPUs per node.
    gpus_per_node: usize,
    /// Two-level only: per-node NIC bandwidth (unidirectional), GB/s.
    nic_gbs: f64,
    /// Two-level only: inter-node hop latency, microseconds.
    internode_latency_us: f64,
}

impl Topology {
    /// A switched (NVSwitch) fabric with `per_gpu_gbs` unidirectional
    /// injection bandwidth per GPU.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus < 2` or the bandwidth is not positive.
    pub fn nvswitch(n_gpus: usize, per_gpu_gbs: f64, latency_us: f64) -> Self {
        assert!(n_gpus >= 2, "a fabric needs at least two endpoints");
        assert!(per_gpu_gbs > 0.0, "bandwidth must be positive");
        Topology {
            kind: TopologyKind::Switched,
            n_gpus,
            injection_gbs: per_gpu_gbs,
            latency_us,
            gpus_per_node: n_gpus,
            nic_gbs: f64::INFINITY,
            internode_latency_us: latency_us,
        }
    }

    /// A multi-node fabric: `nodes` switched nodes of `gpus_per_node` GPUs
    /// each, joined by one `nic_gbs` (unidirectional GB/s) NIC per node
    /// with `internode_latency_us` hop latency.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 2 nodes, fewer than 1 GPU per node, or
    /// non-positive bandwidths.
    pub fn multi_node(
        nodes: usize,
        gpus_per_node: usize,
        per_gpu_gbs: f64,
        intranode_latency_us: f64,
        nic_gbs: f64,
        internode_latency_us: f64,
    ) -> Self {
        assert!(nodes >= 2, "multi-node needs at least two nodes");
        assert!(gpus_per_node >= 1, "each node needs at least one GPU");
        assert!(
            per_gpu_gbs > 0.0 && nic_gbs > 0.0,
            "bandwidths must be positive"
        );
        Topology {
            kind: TopologyKind::TwoLevel,
            n_gpus: nodes * gpus_per_node,
            injection_gbs: per_gpu_gbs,
            latency_us: intranode_latency_us,
            gpus_per_node,
            nic_gbs,
            internode_latency_us,
        }
    }

    /// A full-mesh (Infinity Fabric) topology where each GPU's
    /// `aggregate_gbs` of link bandwidth is split evenly across its
    /// `n_gpus - 1` peer links.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus < 2` or the bandwidth is not positive.
    pub fn full_mesh(n_gpus: usize, aggregate_gbs: f64, latency_us: f64) -> Self {
        assert!(n_gpus >= 2, "a fabric needs at least two endpoints");
        assert!(aggregate_gbs > 0.0, "bandwidth must be positive");
        Topology {
            kind: TopologyKind::FullMesh,
            n_gpus,
            injection_gbs: aggregate_gbs,
            latency_us,
            gpus_per_node: n_gpus,
            nic_gbs: f64::INFINITY,
            internode_latency_us: latency_us,
        }
    }

    /// Fabric organization.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of endpoints.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Per-GPU aggregate unidirectional bandwidth, GB/s.
    pub fn injection_bw_gbs(&self) -> f64 {
        self.injection_gbs
    }

    /// Hop latency in seconds (the inter-node latency on two-level
    /// fabrics, since collectives spanning nodes pay it on every step).
    pub fn latency_s(&self) -> f64 {
        match self.kind {
            TopologyKind::TwoLevel => self.internode_latency_us * 1e-6,
            _ => self.latency_us * 1e-6,
        }
    }

    /// GPUs per node (equal to `n_gpus` on single-node fabrics).
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// The node index of a GPU.
    pub fn node_of(&self, gpu: GpuId) -> usize {
        gpu.index() / self.gpus_per_node
    }

    /// Per-node NIC bandwidth, GB/s (infinite on single-node fabrics).
    pub fn nic_bw_gbs(&self) -> f64 {
        self.nic_gbs
    }

    /// Bandwidth of one point-to-point transfer `src -> dst`, GB/s.
    ///
    /// Switched fabrics deliver the full injection bandwidth to any pair;
    /// meshes are limited by the single direct link.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either id is out of range.
    pub fn p2p_bw_gbs(&self, src: GpuId, dst: GpuId) -> f64 {
        assert!(src != dst, "p2p transfer needs distinct endpoints");
        assert!(src.index() < self.n_gpus && dst.index() < self.n_gpus);
        match self.kind {
            TopologyKind::Switched => self.injection_gbs,
            TopologyKind::FullMesh => self.injection_gbs / (self.n_gpus as f64 - 1.0),
            TopologyKind::TwoLevel => {
                if self.node_of(src) == self.node_of(dst) {
                    self.injection_gbs
                } else {
                    self.nic_gbs
                }
            }
        }
    }

    /// Bus bandwidth available to a ring spanning `group_size` GPUs, GB/s.
    ///
    /// On a switched fabric a single ring saturates each GPU's port. On a
    /// mesh, collective libraries stripe multiple logical rings across all
    /// peer links, so the aggregate injection bandwidth is also the right
    /// ceiling; per-link limits reappear only for point-to-point traffic.
    pub fn ring_busbw_gbs(&self, group_size: usize) -> f64 {
        assert!(group_size >= 2 && group_size <= self.n_gpus);
        match self.kind {
            TopologyKind::TwoLevel if group_size > self.gpus_per_node => {
                // A node-major ring crosses each NIC once per direction, so
                // the stream is bottlenecked by the slower of the NIC and
                // the intra-node port.
                self.injection_gbs.min(self.nic_gbs)
            }
            _ => self.injection_gbs,
        }
    }

    /// Whether the fabric connects `a` and `b` — `false` (never a panic)
    /// for equal or out-of-range endpoints. All three healthy topologies
    /// connect every valid pair; fault layers use this as the base-line
    /// validity check before applying their own dead-link sets.
    pub fn has_link(&self, a: GpuId, b: GpuId) -> bool {
        a != b && a.index() < self.n_gpus && b.index() < self.n_gpus
    }

    /// Bus bandwidth of a ring over `group_size` GPUs that must avoid (or
    /// reroute around) one `dead` link, GB/s.
    ///
    /// * **Switched** — the switch reroutes, but the affected port loses
    ///   one of its [`SWITCHED_PORT_LANES`] bonded lanes.
    /// * **Full mesh** — one of each endpoint's `n - 1` striped peer links
    ///   is gone; with only two GPUs there is no surviving path and the
    ///   bandwidth is 0 (callers must treat that as a missing link).
    /// * **Two-level** — an intra-node death behaves like the switched
    ///   case; a cross-node death drops one of the [`NIC_RAILS`] NIC rails.
    ///
    /// # Panics
    ///
    /// Panics if the group size is invalid or a dead-link endpoint is out
    /// of range.
    pub fn degraded_ring_busbw_gbs(&self, group_size: usize, dead: Link) -> f64 {
        let (a, b) = dead.endpoints();
        assert!(
            a.index() < self.n_gpus && b.index() < self.n_gpus,
            "dead link endpoint out of range"
        );
        let healthy = self.ring_busbw_gbs(group_size);
        let factor = match self.kind {
            TopologyKind::Switched => (SWITCHED_PORT_LANES - 1.0) / SWITCHED_PORT_LANES,
            TopologyKind::FullMesh => {
                let peers = self.n_gpus as f64 - 1.0;
                (peers - 1.0) / peers
            }
            TopologyKind::TwoLevel => {
                if self.node_of(a) == self.node_of(b) {
                    (SWITCHED_PORT_LANES - 1.0) / SWITCHED_PORT_LANES
                } else {
                    (NIC_RAILS - 1.0) / NIC_RAILS
                }
            }
        };
        healthy * factor
    }

    /// Bisection bandwidth of the node, GB/s (for reporting).
    pub fn bisection_bw_gbs(&self) -> f64 {
        match self.kind {
            TopologyKind::Switched => self.injection_gbs * (self.n_gpus as f64 / 2.0),
            TopologyKind::FullMesh => {
                // Links crossing a balanced cut: (n/2) * (n - n/2) links.
                let half = (self.n_gpus / 2) as f64;
                let other = self.n_gpus as f64 - half;
                let per_link = self.injection_gbs / (self.n_gpus as f64 - 1.0);
                per_link * half * other
            }
            TopologyKind::TwoLevel => {
                let nodes = self.n_gpus / self.gpus_per_node;
                self.nic_gbs * (nodes / 2).max(1) as f64
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fabric, {} GPUs, {:.0} GB/s/GPU",
            self.kind, self.n_gpus, self.injection_gbs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switched_p2p_gets_full_injection_bandwidth() {
        let t = Topology::nvswitch(8, 450.0, 4.0);
        assert_eq!(t.p2p_bw_gbs(GpuId(0), GpuId(7)), 450.0);
        assert_eq!(t.p2p_bw_gbs(GpuId(3), GpuId(4)), 450.0);
    }

    #[test]
    fn mesh_p2p_is_limited_by_the_direct_link() {
        let t = Topology::full_mesh(4, 150.0, 6.0);
        assert!((t.p2p_bw_gbs(GpuId(0), GpuId(3)) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn ring_busbw_equals_injection_bandwidth() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        assert_eq!(t.ring_busbw_gbs(4), 300.0);
        let m = Topology::full_mesh(4, 150.0, 6.0);
        assert_eq!(m.ring_busbw_gbs(2), 150.0);
    }

    #[test]
    fn bisection_bandwidth_scales_with_node_size() {
        let t = Topology::nvswitch(8, 450.0, 4.0);
        assert_eq!(t.bisection_bw_gbs(), 4.0 * 450.0);
        let m = Topology::full_mesh(4, 150.0, 6.0);
        assert!((m.bisection_bw_gbs() - 50.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_converted_to_seconds() {
        let t = Topology::nvswitch(2, 100.0, 5.0);
        assert!((t.latency_s() - 5e-6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn p2p_to_self_panics() {
        Topology::nvswitch(2, 100.0, 1.0).p2p_bw_gbs(GpuId(0), GpuId(0));
    }

    #[test]
    #[should_panic(expected = "at least two endpoints")]
    fn single_gpu_fabric_is_rejected() {
        Topology::nvswitch(1, 100.0, 1.0);
    }

    #[test]
    fn two_level_p2p_depends_on_node_locality() {
        let t = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        assert_eq!(t.n_gpus(), 8);
        assert_eq!(t.p2p_bw_gbs(GpuId(0), GpuId(3)), 450.0, "intra-node");
        assert_eq!(t.p2p_bw_gbs(GpuId(0), GpuId(4)), 50.0, "cross-node");
        assert_eq!(t.node_of(GpuId(3)), 0);
        assert_eq!(t.node_of(GpuId(4)), 1);
    }

    #[test]
    fn two_level_ring_is_nic_bound_when_spanning_nodes() {
        let t = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        assert_eq!(t.ring_busbw_gbs(4), 450.0, "intra-node group");
        assert_eq!(t.ring_busbw_gbs(8), 50.0, "node-spanning group");
    }

    #[test]
    fn two_level_latency_is_the_internode_latency() {
        let t = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        assert!((t.latency_s() - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn two_level_bisection_counts_nic_pairs() {
        let t = Topology::multi_node(4, 4, 450.0, 4.0, 50.0, 10.0);
        assert_eq!(t.bisection_bw_gbs(), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_multi_node_is_rejected() {
        Topology::multi_node(1, 4, 450.0, 4.0, 50.0, 10.0);
    }

    #[test]
    fn links_are_order_insensitive_and_display() {
        let l = Link::new(GpuId(3), GpuId(1));
        assert_eq!(l, Link::new(GpuId(1), GpuId(3)));
        assert_eq!(l.endpoints(), (GpuId(1), GpuId(3)));
        assert!(l.touches(GpuId(3)) && !l.touches(GpuId(0)));
        assert_eq!(l.to_string(), "gpu1<->gpu3");
    }

    #[test]
    fn ring_links_close_the_cycle_without_duplicates() {
        let two = ring_links(&[GpuId(2), GpuId(0)]);
        assert_eq!(two, vec![Link::new(GpuId(0), GpuId(2))]);
        let four = ring_links(&[GpuId(3), GpuId(0), GpuId(1), GpuId(2)]);
        assert_eq!(four.len(), 4);
        assert!(four.contains(&Link::new(GpuId(3), GpuId(0))), "wrap link");
        assert!(ring_links(&[GpuId(5)]).is_empty());
    }

    #[test]
    fn has_link_is_total_and_never_panics() {
        let t = Topology::nvswitch(4, 300.0, 5.0);
        assert!(t.has_link(GpuId(0), GpuId(3)));
        assert!(!t.has_link(GpuId(1), GpuId(1)));
        assert!(!t.has_link(GpuId(0), GpuId(4)));
    }

    #[test]
    fn degraded_ring_loses_a_lane_a_stripe_or_a_rail() {
        let dead = Link::new(GpuId(0), GpuId(1));
        let sw = Topology::nvswitch(4, 300.0, 5.0);
        assert!((sw.degraded_ring_busbw_gbs(4, dead) - 300.0 * 11.0 / 12.0).abs() < 1e-9);
        let mesh = Topology::full_mesh(4, 150.0, 6.0);
        assert!((mesh.degraded_ring_busbw_gbs(4, dead) - 150.0 * 2.0 / 3.0).abs() < 1e-9);
        // A two-GPU mesh has no surviving path.
        assert_eq!(
            Topology::full_mesh(2, 100.0, 6.0).degraded_ring_busbw_gbs(2, dead),
            0.0
        );
        let multi = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        let cross = Link::new(GpuId(0), GpuId(4));
        assert!((multi.degraded_ring_busbw_gbs(8, cross) - 25.0).abs() < 1e-9);
        assert!((multi.degraded_ring_busbw_gbs(8, dead) - 50.0 * 11.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes_the_fabric() {
        let t = Topology::full_mesh(4, 150.0, 6.0);
        assert_eq!(t.to_string(), "full-mesh fabric, 4 GPUs, 150 GB/s/GPU");
    }
}
