//! # olab-net — single-node GPU interconnect models
//!
//! Models the two interconnect organizations of the paper's testbeds:
//!
//! * **Switched** (NVIDIA DGX class): every GPU has a full-bandwidth
//!   NVLink port into an NVSwitch plane; any pair communicates at the full
//!   per-GPU injection bandwidth and the only contention points are each
//!   GPU's injection/ejection ports.
//! * **Full mesh** (AMD Instinct class): Infinity Fabric links connect each
//!   GPU pair directly; a point-to-point transfer is limited by the single
//!   link it crosses, while collectives can stripe across all links.
//!
//! The crate provides topology constructors, point-to-point and ring
//! bandwidth queries, and a max-min fair bandwidth-sharing solver used when
//! several flows are in flight at once.
//!
//! ```rust
//! use olab_net::Topology;
//! use olab_sim::GpuId;
//!
//! let dgx = Topology::nvswitch(8, 450.0, 4.0);
//! assert_eq!(dgx.p2p_bw_gbs(GpuId(0), GpuId(5)), 450.0);
//!
//! let mi = Topology::full_mesh(4, 150.0, 6.0);
//! // Each of the 3 peer links gets a third of the aggregate bandwidth.
//! assert!((mi.p2p_bw_gbs(GpuId(0), GpuId(1)) - 50.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod topology;

pub use flow::{share_bandwidth, Flow};
pub use topology::{ring_links, Link, Topology, TopologyKind};
