//! Property-based tests for the bandwidth-sharing solver.

use olab_net::{share_bandwidth, Flow, Topology};
use olab_sim::GpuId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomFlow {
    src: u16,
    dst: u16,
    demand: f64,
}

fn random_flows(n_gpus: u16) -> impl Strategy<Value = Vec<RandomFlow>> {
    proptest::collection::vec(
        (0..n_gpus, 0..n_gpus, 1.0f64..1000.0)
            .prop_filter_map("distinct endpoints", |(src, dst, demand)| {
                (src != dst).then_some(RandomFlow { src, dst, demand })
            }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rates never exceed demands, port capacities, or link capacities.
    #[test]
    fn shares_respect_all_capacities(flows in random_flows(6), switched in any::<bool>()) {
        let topo = if switched {
            Topology::nvswitch(6, 300.0, 5.0)
        } else {
            Topology::full_mesh(6, 150.0, 6.0)
        };
        let fs: Vec<Flow> = flows
            .iter()
            .map(|f| Flow { src: GpuId(f.src), dst: GpuId(f.dst), demand_gbs: f.demand })
            .collect();
        let rates = share_bandwidth(&topo, &fs);
        prop_assert_eq!(rates.len(), fs.len());

        for (rate, flow) in rates.iter().zip(&fs) {
            prop_assert!(*rate >= 0.0);
            prop_assert!(*rate <= flow.demand_gbs + 1e-6);
        }
        // Injection / ejection conservation.
        for g in 0..6u16 {
            let out: f64 = rates
                .iter()
                .zip(&fs)
                .filter(|(_, f)| f.src == GpuId(g))
                .map(|(r, _)| *r)
                .sum();
            let inp: f64 = rates
                .iter()
                .zip(&fs)
                .filter(|(_, f)| f.dst == GpuId(g))
                .map(|(r, _)| *r)
                .sum();
            prop_assert!(out <= topo.injection_bw_gbs() + 1e-6, "gpu{g} out {out}");
            prop_assert!(inp <= topo.injection_bw_gbs() + 1e-6, "gpu{g} in {inp}");
        }
        // Per-link capacity on meshes.
        if !switched {
            let per_link = topo.injection_bw_gbs() / 5.0;
            for a in 0..6u16 {
                for b in 0..6u16 {
                    if a == b { continue; }
                    let link: f64 = rates
                        .iter()
                        .zip(&fs)
                        .filter(|(_, f)| f.src == GpuId(a) && f.dst == GpuId(b))
                        .map(|(r, _)| *r)
                        .sum();
                    prop_assert!(link <= per_link + 1e-6);
                }
            }
        }
    }

    /// An unconstrained single flow gets exactly min(demand, path capacity).
    #[test]
    fn single_flow_gets_full_path(demand in 1.0f64..2000.0) {
        let topo = Topology::nvswitch(4, 300.0, 5.0);
        let rates = share_bandwidth(
            &topo,
            &[Flow { src: GpuId(0), dst: GpuId(1), demand_gbs: demand }],
        );
        prop_assert!((rates[0] - demand.min(300.0)).abs() < 1e-6);
    }

    /// Adding a flow never increases anyone else's rate.
    #[test]
    fn adding_flows_is_monotone_decreasing(flows in random_flows(4)) {
        prop_assume!(flows.len() >= 2);
        let topo = Topology::nvswitch(4, 300.0, 5.0);
        let all: Vec<Flow> = flows
            .iter()
            .map(|f| Flow { src: GpuId(f.src), dst: GpuId(f.dst), demand_gbs: f.demand })
            .collect();
        let fewer = &all[..all.len() - 1];
        let rates_fewer = share_bandwidth(&topo, fewer);
        let rates_all = share_bandwidth(&topo, &all);
        let total_fewer: f64 = rates_fewer.iter().sum();
        let total_all_prefix: f64 = rates_all[..fewer.len()].iter().sum();
        // Aggregate fairness: existing flows lose at most what the new flow
        // gains (max-min fairness is not per-flow monotone, but the
        // aggregate is bounded).
        prop_assert!(total_all_prefix <= total_fewer + 1e-6);
    }
}
