//! The faulty machine: a [`Machine`] wrapped in a fault timeline.
//!
//! `FaultyMachine` is a [`RateModel`] that delegates pricing to the healthy
//! contention model, then applies the fault timeline on top at every epoch:
//!
//! * active throttle windows become per-GPU clock caps on the wrapped
//!   machine (so both the slower rate *and* the lower dynamic power are
//!   priced by the real DVFS model);
//! * ECC-selected compute kernels pay a fixed re-execution latency;
//! * collectives whose ring crosses a degraded link run at the surviving
//!   bandwidth fraction;
//! * collectives whose ring crosses a link *outage* stall, and an
//!   NCCL-style watchdog adjudicates the stall: resume after retries,
//!   degrade onto the surviving ring (paying a communicator rebuild), or
//!   abort the run.
//!
//! The wrapper also reports every fault-window edge and watchdog deadline
//! through [`RateModel::next_boundary`], so the engine re-queries rates
//! exactly at those instants and the piecewise timeline is honored exactly
//! — the foundation of the bit-identical reproducibility guarantee.

use crate::scenario::{FaultTimeline, EDGE_TOL};
use olab_ccl::{adjudicate, relower_degraded, CommOp, FailAction, WatchdogVerdict};
use olab_core::Machine;
use olab_net::{ring_links, Link};
use olab_parallel::Op;
use olab_sim::{GpuCounters, RateModel, RunningTask, TaskId};
use std::collections::{HashMap, HashSet};

/// Progress rate of a stalled task: effectively zero, but positive so the
/// engine's invariants hold (the epoch is bounded by the next watchdog
/// boundary, not by this rate).
const STALL_RATE: f64 = 1e-9;

/// Progress rate after an abort: the simulation drains instantly so the
/// run wrapper can surface the typed error without simulating the corpse.
const DRAIN_RATE: f64 = 1e30;

/// Why and when the watchdog gave up.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortInfo {
    /// Simulation time of the abort, seconds.
    pub at_s: f64,
    /// Label of the collective that exhausted its retries.
    pub collective: String,
    /// Retries spent before giving up.
    pub retries: u32,
}

/// What a recorded fault event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A collective stalled on a link outage (watchdog running).
    Stall,
    /// A communicator rebuild after retry exhaustion.
    Rebuild,
}

/// One resolved fault episode, for trace annotation and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Label of the afflicted task.
    pub label: String,
    /// Episode start, seconds.
    pub start_s: f64,
    /// Episode end, seconds.
    pub end_s: f64,
    /// What happened.
    pub kind: FaultEventKind,
}

/// Per-run fault accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Watchdog retries spent across all stalls.
    pub retries: u32,
    /// Seconds of collective progress lost to stalls and rebuilds.
    pub stall_s: f64,
    /// Collectives re-lowered onto a surviving ring.
    pub degraded_collectives: u32,
    /// Compute kernels that paid an ECC retry.
    pub ecc_kernels: u32,
    /// Every resolved stall/rebuild episode, in resolution order.
    pub events: Vec<FaultEvent>,
}

/// What a stalled collective does when its stall window closes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AfterStall {
    /// The outage ended within the retry budget: resume at full rate.
    Resume,
    /// Retries exhausted, communicator rebuilt: continue at the degraded
    /// rate factor.
    Degrade(f64),
    /// Retries exhausted and no surviving path (or abort policy): kill the
    /// run, reporting the retries spent.
    Abort(u32),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CommState {
    /// Stalled until the given instant, then transition.
    Stalled { until: f64, next: AfterStall },
    /// Running on a rebuilt (degraded) communicator.
    Degraded(f64),
}

/// A [`Machine`] with a fault timeline injected at epoch boundaries.
#[derive(Debug, Clone)]
pub struct FaultyMachine {
    base: Machine,
    timeline: FaultTimeline,
    n_gpus: usize,
    states: HashMap<TaskId, CommState>,
    ecc_counted: HashSet<TaskId>,
    /// Links whose communicator has already been rebuilt: later collectives
    /// crossing them degrade immediately instead of re-paying the watchdog.
    rebuilt: Vec<Link>,
    stats: FaultStats,
    abort: Option<AbortInfo>,
}

impl FaultyMachine {
    /// Wraps a machine in a fault timeline.
    pub fn new(base: Machine, timeline: FaultTimeline) -> Self {
        let n_gpus = base.config().topology.n_gpus();
        FaultyMachine {
            base,
            timeline,
            n_gpus,
            states: HashMap::new(),
            ecc_counted: HashSet::new(),
            rebuilt: Vec::new(),
            stats: FaultStats::default(),
            abort: None,
        }
    }

    /// Fault accounting accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The abort, if the watchdog killed the run.
    pub fn abort(&self) -> Option<&AbortInfo> {
        self.abort.as_ref()
    }

    /// The timeline being injected.
    pub fn timeline(&self) -> &FaultTimeline {
        &self.timeline
    }

    /// Whether the ECC model selects this kernel, by pure hash of
    /// `(seed, task id, label)` — stable under any epoch interleaving.
    fn ecc_selects(&self, id: TaskId, label: &str) -> bool {
        if self.timeline.ecc.rate <= 0.0 {
            return false;
        }
        let mut bytes = Vec::with_capacity(label.len() + 12);
        bytes.extend_from_slice(&self.timeline.ecc.seed.to_le_bytes());
        bytes.extend_from_slice(&id.0.to_le_bytes());
        bytes.extend_from_slice(label.as_bytes());
        let hash = olab_grid::fnv1a_64(&bytes);
        (hash as f64 / u64::MAX as f64) < self.timeline.ecc.rate
    }

    /// Rate factor for a collective re-lowered around `dead`: the ratio of
    /// healthy to degraded isolated duration (`None` when no path survives).
    fn degrade_factor(&self, op: &CommOp, dead: Link) -> Option<f64> {
        let topo = &self.base.config().topology;
        relower_degraded(op, dead, topo)
            .ok()
            .map(|d| op.isolated_duration_s() / d.isolated_duration_s())
    }

    /// Resolves a comm task's fault state at `now`, returning the rate
    /// factor to apply (`None` = the task is stalled this epoch).
    fn comm_factor(
        &mut self,
        now: f64,
        id: TaskId,
        label: &str,
        participants: &[olab_sim::GpuId],
        op: &CommOp,
    ) -> Option<f64> {
        // Advance a pending stall first.
        if let Some(CommState::Stalled { until, next }) = self.states.get(&id).copied() {
            if now < until - EDGE_TOL {
                return None;
            }
            match next {
                AfterStall::Resume => {
                    self.states.remove(&id);
                }
                AfterStall::Degrade(factor) => {
                    self.states.insert(id, CommState::Degraded(factor));
                }
                AfterStall::Abort(retries) => {
                    self.abort = Some(AbortInfo {
                        at_s: until,
                        collective: label.to_string(),
                        retries,
                    });
                    return None;
                }
            }
        }

        let mut factor = match self.states.get(&id) {
            Some(CommState::Degraded(f)) => *f,
            _ => 1.0,
        };

        let ring = ring_links(participants);
        for fault in self.timeline.link_faults.clone() {
            if !fault.active_at(now) || !ring.contains(&fault.link) {
                continue;
            }
            if !fault.is_outage() {
                factor = factor.min(fault.bw_factor);
                continue;
            }
            if self.rebuilt.contains(&fault.link) {
                // The communicator was already rebuilt around this link;
                // this collective was lowered on the surviving ring.
                match self.degrade_factor(op, fault.link) {
                    Some(f) => {
                        factor = factor.min(f);
                        self.states.insert(id, CommState::Degraded(factor));
                    }
                    None => {
                        self.abort = Some(AbortInfo {
                            at_s: now,
                            collective: label.to_string(),
                            retries: 0,
                        });
                        return None;
                    }
                }
                continue;
            }
            // A fresh stall: fix the watchdog's verdict now, in closed form.
            let cfg = self.timeline.watchdog;
            match adjudicate(now, fault.end_s, &cfg) {
                WatchdogVerdict::Resumed { at, retries } => {
                    self.stats.retries += retries;
                    self.stats.stall_s += at - now;
                    self.stats.events.push(FaultEvent {
                        label: label.to_string(),
                        start_s: now,
                        end_s: at,
                        kind: FaultEventKind::Stall,
                    });
                    self.states.insert(
                        id,
                        CommState::Stalled {
                            until: at,
                            next: AfterStall::Resume,
                        },
                    );
                }
                WatchdogVerdict::Exhausted {
                    give_up_at,
                    retries,
                } => {
                    self.stats.retries += retries;
                    let degrade = match cfg.on_exhaustion {
                        FailAction::Degrade => self.degrade_factor(op, fault.link),
                        FailAction::Abort => None,
                    };
                    match degrade {
                        Some(f) => {
                            let rebuild_end =
                                give_up_at + cfg.rebuild_s(op.collective.group_size());
                            self.stats.stall_s += rebuild_end - now;
                            self.stats.degraded_collectives += 1;
                            self.stats.events.push(FaultEvent {
                                label: label.to_string(),
                                start_s: now,
                                end_s: give_up_at,
                                kind: FaultEventKind::Stall,
                            });
                            self.stats.events.push(FaultEvent {
                                label: label.to_string(),
                                start_s: give_up_at,
                                end_s: rebuild_end,
                                kind: FaultEventKind::Rebuild,
                            });
                            self.rebuilt.push(fault.link);
                            self.states.insert(
                                id,
                                CommState::Stalled {
                                    until: rebuild_end,
                                    next: AfterStall::Degrade(f),
                                },
                            );
                        }
                        None => {
                            self.stats.stall_s += give_up_at - now;
                            self.stats.events.push(FaultEvent {
                                label: label.to_string(),
                                start_s: now,
                                end_s: give_up_at,
                                kind: FaultEventKind::Stall,
                            });
                            self.states.insert(
                                id,
                                CommState::Stalled {
                                    until: give_up_at,
                                    next: AfterStall::Abort(retries),
                                },
                            );
                        }
                    }
                }
            }
            return None;
        }
        Some(factor)
    }
}

impl RateModel for FaultyMachine {
    type Payload = Op;

    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Op>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        // The engine always calls the time-aware variant; a direct call
        // means "time zero".
        self.assign_rates_at(0.0, running, rates, power)
    }

    fn assign_rates_at(
        &mut self,
        now: f64,
        running: &[RunningTask<'_, Op>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        // Straggler windows become per-GPU clock caps on the real machine,
        // so throttled rate and throttled power stay consistent.
        let caps: Vec<f64> = (0..self.n_gpus)
            .map(|g| self.timeline.freq_cap_at(g, now))
            .collect();
        self.base.set_gpu_freq_caps(caps);
        self.base.assign_rates_at(now, running, rates, power);

        if self.abort.is_some() {
            rates.iter_mut().for_each(|r| *r = DRAIN_RATE);
            return;
        }

        for (i, task) in running.iter().enumerate() {
            match task.payload {
                Op::Compute(_) => {
                    if self.ecc_selects(task.id, task.label) {
                        if self.ecc_counted.insert(task.id) {
                            self.stats.ecc_kernels += 1;
                        }
                        // Duration gains the fixed retry latency:
                        // 1/r' = 1/r + retry_s.
                        let r = rates[i];
                        rates[i] = r / (1.0 + r * self.timeline.ecc.retry_s);
                    }
                }
                Op::Comm(op) => {
                    match self.comm_factor(now, task.id, task.label, task.participants, op) {
                        Some(factor) => rates[i] *= factor.max(f64::MIN_POSITIVE),
                        None => rates[i] = STALL_RATE,
                    }
                }
            }
        }

        if self.abort.is_some() {
            // The abort fired inside this epoch's resolution: drain.
            rates.iter_mut().for_each(|r| *r = DRAIN_RATE);
        }
    }

    fn counters(&self, gpu: usize) -> GpuCounters {
        // Telemetry comes from the wrapped machine: throttle windows are
        // already applied as clock caps before pricing, so the base
        // counters reflect the faulted frequency, power, and utilization.
        self.base.counters(gpu)
    }

    fn next_boundary(&mut self, now: f64) -> Option<f64> {
        if self.abort.is_some() {
            return None;
        }
        let mut best: Option<f64> = None;
        let mut consider = |t: f64| {
            if t > now + EDGE_TOL && best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        for w in &self.timeline.throttles {
            consider(w.start_s);
            consider(w.end_s);
        }
        for f in &self.timeline.link_faults {
            consider(f.start_s);
            if let Some(e) = f.end_s {
                consider(e);
            }
        }
        for s in self.states.values() {
            if let CommState::Stalled { until, .. } = s {
                consider(*until);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EccFaults, LinkFault, ThrottleWindow};
    use olab_ccl::{lower, Algorithm, Collective, WatchdogConfig};
    use olab_gpu::{Datapath, GpuSku, KernelKind, Precision};
    use olab_parallel::ComputeOp;
    use olab_sim::{Engine, GpuId, StreamKind, TaskSpec, Workload};

    fn quiet_timeline() -> FaultTimeline {
        FaultTimeline {
            throttles: vec![],
            link_faults: vec![],
            ecc: EccFaults {
                seed: 0,
                rate: 0.0,
                retry_s: 0.0,
            },
            watchdog: WatchdogConfig::degrade(0.05),
            horizon_s: 1.0,
        }
    }

    fn machine() -> Machine {
        Machine::stock(GpuSku::h100(), 4)
    }

    fn allreduce(machine: &Machine, bytes: u64) -> Op {
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        let c = Collective::all_reduce(bytes, group);
        Op::Comm(lower(
            &c,
            Algorithm::Ring,
            &machine.config().sku,
            &machine.config().topology,
            Precision::Fp16,
        ))
    }

    fn gemm() -> Op {
        Op::Compute(ComputeOp::new(
            KernelKind::gemm(4096, 4096, 4096),
            Precision::Fp16,
            Datapath::TensorCore,
        ))
    }

    fn ar_workload(machine: &Machine) -> Workload<Op> {
        let mut w = Workload::new(4);
        w.push(TaskSpec::new(
            "ar",
            (0..4).map(GpuId).collect(),
            StreamKind::Comm,
            allreduce(machine, 1 << 28),
        ));
        w
    }

    fn makespan(faulty: &mut FaultyMachine, w: &Workload<Op>) -> f64 {
        Engine::new(faulty).run(w).unwrap().makespan().as_secs()
    }

    #[test]
    fn a_quiet_timeline_reproduces_the_healthy_machine() {
        let m = machine();
        let w = ar_workload(&m);
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();
        let mut faulty = FaultyMachine::new(m, quiet_timeline());
        assert_eq!(makespan(&mut faulty, &w), healthy);
        assert_eq!(faulty.stats(), &FaultStats::default());
    }

    #[test]
    fn a_degraded_link_slows_only_collectives_crossing_it() {
        let m = machine();
        let w = ar_workload(&m);
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();

        let mut timeline = quiet_timeline();
        timeline.link_faults.push(LinkFault {
            link: Link::new(GpuId(1), GpuId(2)),
            start_s: 0.0,
            end_s: None,
            bw_factor: 0.5,
        });
        let mut faulty = FaultyMachine::new(m.clone(), timeline.clone());
        let slowed = makespan(&mut faulty, &w);
        assert!(
            (slowed / healthy - 2.0).abs() < 0.2,
            "half bandwidth ≈ double duration: {slowed} vs {healthy}"
        );

        // A collective not touching the link is unaffected.
        let mut w2 = Workload::new(4);
        w2.push(TaskSpec::new(
            "p2p",
            vec![GpuId(0), GpuId(3)],
            StreamKind::Comm,
            Op::Comm(lower(
                &Collective::p2p(1 << 24, GpuId(0), GpuId(3)),
                Algorithm::Direct,
                &m.config().sku,
                &m.config().topology,
                Precision::Fp16,
            )),
        ));
        let healthy_p2p = Engine::new(m.clone())
            .run(&w2)
            .unwrap()
            .makespan()
            .as_secs();
        let mut faulty2 = FaultyMachine::new(m, timeline);
        assert_eq!(makespan(&mut faulty2, &w2), healthy_p2p);
    }

    #[test]
    fn a_transient_outage_stalls_then_resumes() {
        let m = machine();
        let w = ar_workload(&m);
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();

        let mut timeline = quiet_timeline();
        // Outage from t=0; ends inside the first timeout.
        let outage_end = 0.5 * timeline.watchdog.timeout_s;
        timeline.link_faults.push(LinkFault {
            link: Link::new(GpuId(0), GpuId(1)),
            start_s: 0.0,
            end_s: Some(outage_end),
            bw_factor: 0.0,
        });
        let mut faulty = FaultyMachine::new(m, timeline);
        let stalled = makespan(&mut faulty, &w);
        assert!(
            (stalled - (healthy + outage_end)).abs() < 1e-6,
            "stall shifts completion by the outage: {stalled} vs {healthy} + {outage_end}"
        );
        assert_eq!(faulty.stats().retries, 0);
        assert_eq!(faulty.stats().events.len(), 1);
        assert!((faulty.stats().stall_s - outage_end).abs() < 1e-9);
        assert!(faulty.abort().is_none());
    }

    #[test]
    fn a_dead_link_degrades_after_exhausting_retries() {
        let m = machine();
        let w = ar_workload(&m);
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();

        let mut timeline = quiet_timeline();
        timeline.link_faults.push(LinkFault {
            link: Link::new(GpuId(2), GpuId(3)),
            start_s: 0.0,
            end_s: None,
            bw_factor: 0.0,
        });
        let mut faulty = FaultyMachine::new(m, timeline.clone());
        let degraded = makespan(&mut faulty, &w);
        let patience = timeline.watchdog.patience_s() + timeline.watchdog.rebuild_s(4);
        assert!(
            degraded > healthy + patience,
            "must pay full patience + rebuild + degraded run: {degraded}"
        );
        assert_eq!(faulty.stats().degraded_collectives, 1);
        assert_eq!(faulty.stats().retries, timeline.watchdog.max_retries);
        assert!(faulty.abort().is_none(), "degrade, not abort");
        assert!(faulty
            .stats()
            .events
            .iter()
            .any(|e| e.kind == FaultEventKind::Rebuild));
    }

    #[test]
    fn abort_policy_kills_the_run_instead() {
        let m = machine();
        let w = ar_workload(&m);
        let mut timeline = quiet_timeline();
        timeline.watchdog = WatchdogConfig::abort(0.05);
        timeline.link_faults.push(LinkFault {
            link: Link::new(GpuId(0), GpuId(1)),
            start_s: 0.0,
            end_s: None,
            bw_factor: 0.0,
        });
        let mut faulty = FaultyMachine::new(m, timeline);
        let _ = makespan(&mut faulty, &w);
        let abort = faulty.abort().expect("watchdog must abort");
        assert_eq!(abort.collective, "ar");
        assert_eq!(abort.retries, 3);
    }

    #[test]
    fn throttle_windows_slow_the_straggler_mid_run() {
        let m = machine();
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("g0", GpuId(0), gemm()));
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();

        let mut timeline = quiet_timeline();
        timeline.throttles.push(ThrottleWindow {
            gpu: 0,
            start_s: healthy * 0.25,
            end_s: healthy * 10.0,
            freq_factor: 0.5,
        });
        let mut faulty = FaultyMachine::new(m, timeline);
        let throttled = makespan(&mut faulty, &w);
        assert!(
            throttled > healthy * 1.3,
            "mid-run throttle must stretch the kernel: {throttled} vs {healthy}"
        );
    }

    #[test]
    fn ecc_retries_add_fixed_latency_to_selected_kernels() {
        let m = machine();
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("k0", GpuId(0), gemm()));
        let healthy = Engine::new(m.clone()).run(&w).unwrap().makespan().as_secs();

        let mut timeline = quiet_timeline();
        timeline.ecc = EccFaults {
            seed: 9,
            rate: 1.0, // select everything
            retry_s: 0.25,
        };
        let mut faulty = FaultyMachine::new(m, timeline);
        let with_ecc = makespan(&mut faulty, &w);
        assert!(
            (with_ecc - (healthy + 0.25)).abs() < 1e-6,
            "retry adds its fixed latency: {with_ecc} vs {healthy} + 0.25"
        );
        assert_eq!(faulty.stats().ecc_kernels, 1);
    }
}
