//! Running an experiment under a fault scenario and scoring its resilience.
//!
//! [`run_with_faults`] executes the experiment twice on the *same* overlap
//! timeline — once on the healthy machine (the baseline that also sizes the
//! fault windows) and once under the injected [`FaultTimeline`] — and
//! reports how much time, overlap and efficiency the faults cost. Both runs
//! are pure functions of `(experiment, spec)`, so the whole report is
//! bit-identical across invocations and sweep parallelism.

use crate::machine::{AbortInfo, FaultEventKind, FaultStats, FaultyMachine};
use crate::scenario::{FaultScenarioSpec, FaultTimeline};
use olab_core::{
    execute, execute_model, to_chrome_trace_annotated, Experiment, ExperimentError, RunResult,
    TraceAnnotation,
};
use olab_parallel::ExecutionMode;
use std::error::Error;
use std::fmt;

/// Why a faulted run produced no report.
#[derive(Debug)]
pub enum FaultError {
    /// The watchdog exhausted its retries under an abort policy (or no
    /// surviving path existed): NCCL would tear the job down here.
    Aborted(AbortInfo),
    /// The experiment itself is infeasible or failed to simulate.
    Experiment(ExperimentError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Aborted(info) => write!(
                f,
                "watchdog aborted at {:.3}s: collective '{}' unreachable after {} retries",
                info.at_s, info.collective, info.retries
            ),
            FaultError::Experiment(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Aborted(_) => None,
            FaultError::Experiment(e) => Some(e),
        }
    }
}

impl From<ExperimentError> for FaultError {
    fn from(e: ExperimentError) -> Self {
        FaultError::Experiment(e)
    }
}

/// Resilience scorecard: the faulty run against its fault-free baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceMetrics {
    /// Fault-free end-to-end time, seconds.
    pub fault_free_e2e_s: f64,
    /// End-to-end time under the fault scenario, seconds.
    pub faulty_e2e_s: f64,
    /// Wall-clock lost to the scenario, seconds.
    pub time_lost_s: f64,
    /// Collective progress lost to watchdog stalls and rebuilds, seconds.
    pub stall_s: f64,
    /// Watchdog retries spent.
    pub retries: u32,
    /// Collectives re-lowered onto a surviving ring.
    pub degraded_collectives: u32,
    /// Compute kernels that paid an ECC retry.
    pub ecc_kernels: u32,
    /// Overlap ratio (Eq. 2) of the fault-free run.
    pub fault_free_overlap_ratio: f64,
    /// Overlap ratio under faults.
    pub faulty_overlap_ratio: f64,
    /// Overlap retained under faults: faulty / fault-free overlap ratio
    /// (1.0 when the baseline has no overlap to lose).
    pub overlap_efficiency: f64,
}

impl ResilienceMetrics {
    fn derive(fault_free: &RunResult, faulty: &RunResult, stats: &FaultStats) -> Self {
        let base_overlap = fault_free.overlap_ratio();
        let faulty_overlap = faulty.overlap_ratio();
        ResilienceMetrics {
            fault_free_e2e_s: fault_free.e2e_s,
            faulty_e2e_s: faulty.e2e_s,
            time_lost_s: faulty.e2e_s - fault_free.e2e_s,
            stall_s: stats.stall_s,
            retries: stats.retries,
            degraded_collectives: stats.degraded_collectives,
            ecc_kernels: stats.ecc_kernels,
            fault_free_overlap_ratio: base_overlap,
            faulty_overlap_ratio: faulty_overlap,
            overlap_efficiency: if base_overlap > 0.0 {
                faulty_overlap / base_overlap
            } else {
                1.0
            },
        }
    }
}

impl fmt::Display for ResilienceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "e2e {:.4}s -> {:.4}s (+{:.4}s), stall {:.4}s, {} retries, \
             {} degraded, {} ecc, overlap {:.3} -> {:.3} (eff {:.3})",
            self.fault_free_e2e_s,
            self.faulty_e2e_s,
            self.time_lost_s,
            self.stall_s,
            self.retries,
            self.degraded_collectives,
            self.ecc_kernels,
            self.fault_free_overlap_ratio,
            self.faulty_overlap_ratio,
            self.overlap_efficiency
        )
    }
}

/// Everything one faulted run produced.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The experiment that ran.
    pub experiment: Experiment,
    /// The scenario it ran under.
    pub spec: FaultScenarioSpec,
    /// The concrete fault windows the spec expanded into.
    pub timeline: FaultTimeline,
    /// The resilience scorecard.
    pub metrics: ResilienceMetrics,
    /// The healthy baseline run.
    pub fault_free: RunResult,
    /// The run under faults.
    pub faulty: RunResult,
    /// Raw fault accounting (including the per-episode event log).
    pub stats: FaultStats,
}

/// The fault windows of `timeline` and the watchdog episodes of `stats`
/// as Chrome-trace annotations, clipped to `until` seconds.
///
/// This is the single source of truth for how faults render in traces:
/// [`FaultReport::annotations`] uses it with the faulty run's makespan,
/// and observability tooling reuses it for instrumented fault runs.
pub fn fault_annotations(
    timeline: &FaultTimeline,
    stats: &FaultStats,
    until: f64,
) -> Vec<TraceAnnotation> {
    let mut notes = Vec::new();
    for w in &timeline.throttles {
        notes.push(TraceAnnotation {
            name: format!("gpu{} clock x{:.2}", w.gpu, w.freq_factor),
            track: "throttle".into(),
            start_s: w.start_s.min(until),
            end_s: w.end_s.min(until),
        });
    }
    for l in &timeline.link_faults {
        let name = if l.is_outage() {
            format!("{} outage", l.link)
        } else {
            format!("{} bw x{:.2}", l.link, l.bw_factor)
        };
        notes.push(TraceAnnotation {
            name,
            track: "link".into(),
            start_s: l.start_s.min(until),
            end_s: l.end_s.unwrap_or(until).min(until),
        });
    }
    for e in &stats.events {
        let (name, track) = match e.kind {
            FaultEventKind::Stall => (format!("watchdog stall: {}", e.label), "watchdog"),
            FaultEventKind::Rebuild => (format!("communicator rebuild: {}", e.label), "watchdog"),
        };
        notes.push(TraceAnnotation {
            name,
            track: track.into(),
            start_s: e.start_s.min(until),
            end_s: e.end_s.min(until),
        });
    }
    notes
}

impl FaultReport {
    /// The fault windows and watchdog episodes as Chrome-trace annotations,
    /// clipped to the faulty run's makespan.
    pub fn annotations(&self) -> Vec<TraceAnnotation> {
        fault_annotations(&self.timeline, &self.stats, self.faulty.e2e_s)
    }

    /// The faulty run as annotated Chrome-trace JSON (fault windows and
    /// watchdog episodes appear as their own process below the GPUs).
    pub fn chrome_trace(&self) -> String {
        to_chrome_trace_annotated(&self.faulty.trace, &self.annotations())
    }
}

/// One faulted execution with the abort surfaced as *data* instead of an
/// error — the raw material recovery policies are built from.
///
/// [`run_with_faults`] keeps the classic fail-fast contract (an abort is a
/// typed error); recovery layers instead call [`run_under_faults`] and
/// decide what an abort *means*: terminal failure, a restart from the last
/// checkpoint, or an elastic shrink onto the surviving ranks.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// The experiment that ran.
    pub experiment: Experiment,
    /// The scenario it ran under.
    pub spec: FaultScenarioSpec,
    /// The concrete fault windows the spec expanded into.
    pub timeline: FaultTimeline,
    /// The healthy baseline run (also sized the fault windows).
    pub fault_free: RunResult,
    /// The run under faults. When `abort` is set, everything after the
    /// abort instant is a near-zero-power drain, so `faulty.e2e_s` is
    /// effectively the abort time.
    pub faulty: RunResult,
    /// Raw fault accounting (including the per-episode event log).
    pub stats: FaultStats,
    /// Set when the watchdog gave up with no graceful path.
    pub abort: Option<AbortInfo>,
}

impl FaultRun {
    /// Seconds of useful forward progress committed before the run ended:
    /// wall time minus watchdog stalls, clamped to the fault-free makespan.
    /// For a completed run this is the whole (de-stalled) run; for an
    /// aborted one it is what a recovery policy can salvage.
    pub fn useful_s(&self) -> f64 {
        let horizon = self.abort.as_ref().map_or(self.faulty.e2e_s, |a| a.at_s);
        (horizon - self.stats.stall_s).clamp(0.0, self.fault_free.e2e_s)
    }
}

/// Runs `exp` fault-free (the baseline that sizes the fault windows), then
/// again under the scenario. A watchdog abort is reported in
/// [`FaultRun::abort`], not as an error.
///
/// # Errors
///
/// Only when the experiment itself is infeasible or fails to simulate.
pub fn run_under_faults(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
) -> Result<FaultRun, ExperimentError> {
    let policy = exp.validate()?;
    let machine = exp.machine();
    let workload = exp.timeline(ExecutionMode::Overlapped, policy)?;
    let fault_free = execute(&workload, &machine).map_err(ExperimentError::from)?;

    let timeline = FaultTimeline::generate(spec, exp.n_gpus, fault_free.e2e_s);
    let mut injected = FaultyMachine::new(machine, timeline.clone());
    let faulty = execute_model(&workload, &mut injected).map_err(ExperimentError::from)?;
    let abort = injected.abort().cloned();
    let stats = injected.stats().clone();
    Ok(FaultRun {
        experiment: exp.clone(),
        spec: *spec,
        timeline,
        fault_free,
        faulty,
        stats,
        abort,
    })
}

/// Runs `exp` fault-free (the baseline that sizes the fault windows), then
/// again under the scenario, and scores the difference.
///
/// # Errors
///
/// [`FaultError::Aborted`] when the watchdog gives up with no graceful
/// path; [`FaultError::Experiment`] when the experiment itself is
/// infeasible or fails to simulate.
pub fn run_with_faults(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
) -> Result<FaultReport, FaultError> {
    let run = run_under_faults(exp, spec)?;
    if let Some(info) = run.abort {
        return Err(FaultError::Aborted(info));
    }
    let metrics = ResilienceMetrics::derive(&run.fault_free, &run.faulty, &run.stats);
    Ok(FaultReport {
        experiment: run.experiment,
        spec: run.spec,
        timeline: run.timeline,
        metrics,
        fault_free: run.fault_free,
        faulty: run.faulty,
        stats: run.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Severity;
    use olab_core::Strategy;
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn small_experiment() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    #[test]
    fn fault_free_lower_bounds_every_severity() {
        let exp = small_experiment();
        for severity in Severity::ALL {
            let spec = FaultScenarioSpec::degrade(7, severity);
            let report = run_with_faults(&exp, &spec).expect("degrade policy never aborts");
            assert!(
                report.metrics.faulty_e2e_s >= report.metrics.fault_free_e2e_s - 1e-9,
                "{severity:?}: faults cannot speed a run up"
            );
            assert!(report.metrics.time_lost_s >= -1e-9);
        }
    }

    #[test]
    fn severe_scenarios_degrade_a_collective_gracefully() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(3, Severity::Severe);
        let report = run_with_faults(&exp, &spec).expect("graceful degradation, not a panic");
        assert!(
            report.metrics.degraded_collectives > 0 || report.metrics.retries > 0,
            "a severe scenario (dead link) must trip the watchdog: {}",
            report.metrics
        );
    }

    #[test]
    fn reports_are_bit_identical_for_the_same_seed() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(11, Severity::Moderate);
        let a = run_with_faults(&exp, &spec).unwrap();
        let b = run_with_faults(&exp, &spec).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn different_seeds_produce_different_timelines() {
        let exp = small_experiment();
        let a = run_with_faults(&exp, &FaultScenarioSpec::degrade(1, Severity::Moderate)).unwrap();
        let b = run_with_faults(&exp, &FaultScenarioSpec::degrade(2, Severity::Moderate)).unwrap();
        assert_ne!(a.timeline, b.timeline);
    }

    #[test]
    fn aborts_are_data_under_faults_and_errors_with_faults() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::abort(3, Severity::Severe);
        let run = run_under_faults(&exp, &spec).expect("feasible experiment");
        let info = run.abort.clone().expect("severe abort policy must abort");
        assert!(info.at_s > 0.0);
        assert!(run.useful_s() <= info.at_s);
        assert!(run.useful_s() >= 0.0);
        match run_with_faults(&exp, &spec) {
            Err(FaultError::Aborted(e)) => assert_eq!(e, info),
            other => panic!("fail-fast contract must error: {other:?}"),
        }
    }

    #[test]
    fn completed_runs_commit_their_destalled_wall_time() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(7, Severity::Moderate);
        let run = run_under_faults(&exp, &spec).unwrap();
        assert!(run.abort.is_none());
        let expected = (run.faulty.e2e_s - run.stats.stall_s).clamp(0.0, run.fault_free.e2e_s);
        assert!((run.useful_s() - expected).abs() < 1e-12);
        assert!(run.useful_s() <= run.fault_free.e2e_s + 1e-12);
    }

    #[test]
    fn annotations_cover_every_fault_window_and_episode() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(5, Severity::Severe);
        let report = run_with_faults(&exp, &spec).unwrap();
        let notes = report.annotations();
        let expected = report.timeline.throttles.len()
            + report.timeline.link_faults.len()
            + report.stats.events.len();
        assert_eq!(notes.len(), expected);
        let json = report.chrome_trace();
        assert!(json.contains("\"cat\": \"fault\""));
        assert!(json.contains("faults/link"));
    }
}
