//! The faults sweep cell: one `(experiment, fault scenario)` pair as a
//! cacheable [`GridJob`].
//!
//! The cache descriptor is the experiment's canonical cell descriptor
//! joined with the scenario descriptor (which carries the fault schema
//! version, seed, severity and exhaustion policy) — so a faulty cell can
//! never collide with its fault-free twin or with a different scenario.

use crate::run::{run_with_faults, FaultError, ResilienceMetrics};
use crate::scenario::{FaultScenarioSpec, Severity};
use olab_core::sweep::cell_descriptor;
use olab_core::Experiment;
use olab_grid::{CacheValue, GridJob, Reader, Writer};

/// One cell of a faults sweep.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The experiment to run.
    pub experiment: Experiment,
    /// The fault scenario to inject.
    pub spec: FaultScenarioSpec,
}

impl FaultCell {
    /// Pairs an experiment with a scenario.
    pub fn new(experiment: Experiment, spec: FaultScenarioSpec) -> Self {
        FaultCell { experiment, spec }
    }
}

/// The cacheable outcome of one faults cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedFaultCell {
    /// The run survived (possibly degraded); resilience scorecard attached.
    Ok(ResilienceMetrics),
    /// The watchdog tore the run down: abort time, collective, retries.
    Aborted {
        /// Simulation time of the abort, seconds.
        at_s: f64,
        /// The collective that exhausted its retries.
        collective: String,
        /// Retries spent before giving up.
        retries: u32,
    },
    /// The experiment itself was infeasible (OOM, invalid config, …).
    Infeasible(String),
}

impl CacheValue for CachedFaultCell {
    fn encode(&self, w: &mut Writer) {
        match self {
            CachedFaultCell::Ok(m) => {
                w.put_u8(0);
                w.put_f64(m.fault_free_e2e_s);
                w.put_f64(m.faulty_e2e_s);
                w.put_f64(m.time_lost_s);
                w.put_f64(m.stall_s);
                w.put_u32(m.retries);
                w.put_u32(m.degraded_collectives);
                w.put_u32(m.ecc_kernels);
                w.put_f64(m.fault_free_overlap_ratio);
                w.put_f64(m.faulty_overlap_ratio);
                w.put_f64(m.overlap_efficiency);
            }
            CachedFaultCell::Aborted {
                at_s,
                collective,
                retries,
            } => {
                w.put_u8(1);
                w.put_f64(*at_s);
                w.put_str(collective);
                w.put_u32(*retries);
            }
            CachedFaultCell::Infeasible(msg) => {
                w.put_u8(2);
                w.put_str(msg);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.get_u8()? {
            0 => Some(CachedFaultCell::Ok(ResilienceMetrics {
                fault_free_e2e_s: r.get_f64()?,
                faulty_e2e_s: r.get_f64()?,
                time_lost_s: r.get_f64()?,
                stall_s: r.get_f64()?,
                retries: r.get_u32()?,
                degraded_collectives: r.get_u32()?,
                ecc_kernels: r.get_u32()?,
                fault_free_overlap_ratio: r.get_f64()?,
                faulty_overlap_ratio: r.get_f64()?,
                overlap_efficiency: r.get_f64()?,
            })),
            1 => Some(CachedFaultCell::Aborted {
                at_s: r.get_f64()?,
                collective: r.get_str()?,
                retries: r.get_u32()?,
            }),
            2 => Some(CachedFaultCell::Infeasible(r.get_str()?)),
            _ => None,
        }
    }
}

impl GridJob for FaultCell {
    type Output = CachedFaultCell;

    fn descriptor(&self) -> String {
        format!(
            "{} | {}",
            cell_descriptor(&self.experiment),
            self.spec.descriptor()
        )
    }

    fn execute(&self) -> CachedFaultCell {
        match run_with_faults(&self.experiment, &self.spec) {
            Ok(report) => CachedFaultCell::Ok(report.metrics),
            Err(FaultError::Aborted(info)) => CachedFaultCell::Aborted {
                at_s: info.at_s,
                collective: info.collective,
                retries: info.retries,
            },
            Err(FaultError::Experiment(e)) => CachedFaultCell::Infeasible(e.to_string()),
        }
    }
}

/// The faults experiment grid: `base` crossed with every severity for each
/// seed — the sweep behind the CLI `faults` subcommand and the CI smoke
/// step.
pub fn severity_grid(base: &Experiment, seeds: &[u64], severities: &[Severity]) -> Vec<FaultCell> {
    let mut cells = Vec::with_capacity(seeds.len() * severities.len());
    for &seed in seeds {
        for &severity in severities {
            cells.push(FaultCell::new(
                base.clone(),
                FaultScenarioSpec::degrade(seed, severity),
            ));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::Strategy;
    use olab_gpu::SkuKind;
    use olab_grid::Executor;
    use olab_models::ModelPreset;

    fn small_experiment() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    fn roundtrip(v: &CachedFaultCell) -> CachedFaultCell {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        CachedFaultCell::decode(&mut r).expect("decodes")
    }

    #[test]
    fn cached_cells_roundtrip_through_the_codec() {
        let ok = CachedFaultCell::Ok(ResilienceMetrics {
            fault_free_e2e_s: 1.25,
            faulty_e2e_s: 1.5,
            time_lost_s: 0.25,
            stall_s: 0.1,
            retries: 3,
            degraded_collectives: 1,
            ecc_kernels: 2,
            fault_free_overlap_ratio: 0.8,
            faulty_overlap_ratio: 0.6,
            overlap_efficiency: 0.75,
        });
        assert_eq!(roundtrip(&ok), ok);
        let aborted = CachedFaultCell::Aborted {
            at_s: 0.5,
            collective: "ar-layer3".into(),
            retries: 3,
        };
        assert_eq!(roundtrip(&aborted), aborted);
        let infeasible = CachedFaultCell::Infeasible("out of memory".into());
        assert_eq!(roundtrip(&infeasible), infeasible);
    }

    #[test]
    fn faulty_descriptors_never_collide_with_fault_free_or_other_scenarios() {
        let exp = small_experiment();
        let plain = cell_descriptor(&exp);
        let a = FaultCell::new(exp.clone(), FaultScenarioSpec::degrade(1, Severity::Mild));
        let b = FaultCell::new(exp.clone(), FaultScenarioSpec::degrade(2, Severity::Mild));
        let c = FaultCell::new(exp.clone(), FaultScenarioSpec::degrade(1, Severity::Severe));
        let d = FaultCell::new(exp, FaultScenarioSpec::abort(1, Severity::Mild));
        let descs = [
            a.descriptor(),
            b.descriptor(),
            c.descriptor(),
            d.descriptor(),
        ];
        for (i, x) in descs.iter().enumerate() {
            assert_ne!(x, &plain, "faulty cell must not reuse the plain key");
            for (j, y) in descs.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "seed/severity/action must all separate keys");
                }
            }
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_bit_for_bit() {
        let cells = severity_grid(&small_experiment(), &[1, 2], Severity::ALL.as_slice());
        let serial: Vec<_> = Executor::new()
            .with_jobs(1)
            .run(&cells)
            .outputs
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        let parallel: Vec<_> = Executor::new()
            .with_jobs(4)
            .run(&cells)
            .outputs
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|c| matches!(c, CachedFaultCell::Ok(_))));
    }
}
