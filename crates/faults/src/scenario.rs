//! Seeded fault scenarios: a deterministic timeline of hardware misbehavior.
//!
//! A [`FaultScenarioSpec`] (seed + severity + exhaustion policy) expands into
//! a [`FaultTimeline`] — concrete throttle windows, link faults, and an ECC
//! model — sized relative to the fault-free makespan of the run it will be
//! injected into. Expansion consumes the seeded RNG in a fixed order, so the
//! same `(cell, spec)` pair always produces the identical timeline and
//! therefore a bit-identical faulty simulation.

use olab_ccl::{FailAction, WatchdogConfig};
use olab_net::{ring_links, Link};
use olab_sim::{GpuId, SeededRng};
use std::fmt;

/// Version of the fault-scenario expansion. Part of every fault-cell cache
/// descriptor, so changing the expansion invalidates cached faulty cells
/// instead of silently serving results from the old model.
pub const FAULT_SCHEMA_VERSION: u32 = 1;

/// How hard the scenario hits the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// One shallow throttle window and one degraded link; no outages.
    Mild,
    /// Deeper throttles, a degraded link, and one transient link outage
    /// short enough for the watchdog to ride out with retries.
    Moderate,
    /// Deep throttles, a degraded link, a transient outage, and one link
    /// that dies for good — the watchdog must degrade or abort.
    Severe,
}

impl Severity {
    /// All severities, mildest first.
    pub const ALL: [Severity; 3] = [Severity::Mild, Severity::Moderate, Severity::Severe];

    fn throttle_count(self) -> usize {
        match self {
            Severity::Mild => 1,
            Severity::Moderate => 2,
            Severity::Severe => 3,
        }
    }

    fn throttle_factor(self) -> f64 {
        match self {
            Severity::Mild => 0.8,
            Severity::Moderate => 0.65,
            Severity::Severe => 0.5,
        }
    }

    fn link_bw_factor(self) -> f64 {
        match self {
            Severity::Mild => 0.6,
            Severity::Moderate => 0.4,
            Severity::Severe => 0.25,
        }
    }

    fn has_transient_outage(self) -> bool {
        !matches!(self, Severity::Mild)
    }

    fn has_dead_link(self) -> bool {
        matches!(self, Severity::Severe)
    }

    fn ecc_rate(self) -> f64 {
        match self {
            Severity::Mild => 0.05,
            Severity::Moderate => 0.10,
            Severity::Severe => 0.20,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Mild => write!(f, "mild"),
            Severity::Moderate => write!(f, "moderate"),
            Severity::Severe => write!(f, "severe"),
        }
    }
}

/// A fault scenario: everything needed to expand a deterministic timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenarioSpec {
    /// RNG seed (same seed ⇒ identical timeline ⇒ bit-identical run).
    pub seed: u64,
    /// Scenario severity.
    pub severity: Severity,
    /// What the watchdog does when a collective exhausts its retries.
    pub on_exhaustion: FailAction,
}

impl FaultScenarioSpec {
    /// A degrading scenario (NCCL-rebuilds-the-communicator semantics).
    pub fn degrade(seed: u64, severity: Severity) -> Self {
        FaultScenarioSpec {
            seed,
            severity,
            on_exhaustion: FailAction::Degrade,
        }
    }

    /// An aborting scenario (NCCL's default crash-on-timeout semantics).
    pub fn abort(seed: u64, severity: Severity) -> Self {
        FaultScenarioSpec {
            seed,
            severity,
            on_exhaustion: FailAction::Abort,
        }
    }

    /// Canonical cache-descriptor fragment: covers every input of the
    /// timeline expansion plus the expansion version, so faulty cells can
    /// never collide with fault-free cells or with each other.
    pub fn descriptor(&self) -> String {
        format!(
            "faults schema={FAULT_SCHEMA_VERSION} seed={} severity={} action={:?}",
            self.seed, self.severity, self.on_exhaustion
        )
    }
}

/// A transient per-GPU DVFS/thermal throttle window `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleWindow {
    /// The straggler GPU.
    pub gpu: usize,
    /// Window start, seconds.
    pub start_s: f64,
    /// Window end, seconds.
    pub end_s: f64,
    /// Clock cap inside the window, fraction of boost in `(0, 1]`.
    pub freq_factor: f64,
}

impl ThrottleWindow {
    /// Whether the window is active at `now` (half-open, with a small
    /// tolerance so epochs starting exactly on a boundary land in the new
    /// regime despite floating-point accumulation).
    pub fn active_at(&self, now: f64) -> bool {
        now >= self.start_s - EDGE_TOL && now < self.end_s - EDGE_TOL
    }
}

/// A time-windowed link fault: degraded bandwidth (`0 < bw_factor < 1`) or
/// an outage (`bw_factor == 0`). `end_s == None` means the link is dead for
/// the rest of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// The afflicted link.
    pub link: Link,
    /// Fault onset, seconds.
    pub start_s: f64,
    /// Fault end, seconds (`None` = permanent).
    pub end_s: Option<f64>,
    /// Surviving bandwidth fraction (`0.0` = no progress at all).
    pub bw_factor: f64,
}

impl LinkFault {
    /// Whether this fault is a full outage (collectives crossing the link
    /// make no progress while it is active).
    pub fn is_outage(&self) -> bool {
        self.bw_factor <= 0.0
    }

    /// Whether the fault is active at `now` (same edge tolerance as
    /// [`ThrottleWindow::active_at`]).
    pub fn active_at(&self, now: f64) -> bool {
        now >= self.start_s - EDGE_TOL && self.end_s.is_none_or(|e| now < e - EDGE_TOL)
    }
}

/// Tolerance for window-edge comparisons: epochs start within floating-point
/// error of the boundary the engine clamped to, and must land in the *new*
/// regime.
pub(crate) const EDGE_TOL: f64 = 1e-9;

/// ECC-retry model: a seeded fraction of compute kernels pay a fixed
/// re-execution latency (DRAM ECC double-bit retries re-run the affected
/// launch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccFaults {
    /// Selection seed (kernels are chosen by a pure hash, not by draw
    /// order, so selection is stable under any epoch interleaving).
    pub seed: u64,
    /// Fraction of compute kernels affected, in `[0, 1]`.
    pub rate: f64,
    /// Fixed extra latency per affected kernel, seconds.
    pub retry_s: f64,
}

/// The fully-expanded, deterministic fault timeline for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    /// Straggler windows (transient per-GPU clock caps).
    pub throttles: Vec<ThrottleWindow>,
    /// Link degradations and outages.
    pub link_faults: Vec<LinkFault>,
    /// ECC-retry model for compute kernels.
    pub ecc: EccFaults,
    /// Watchdog governing stalled collectives.
    pub watchdog: WatchdogConfig,
    /// The fault-free makespan the windows were sized against, seconds.
    pub horizon_s: f64,
}

impl FaultTimeline {
    /// Expands a spec into concrete fault windows over a node of `n_gpus`,
    /// sized relative to `horizon_s` (the fault-free makespan).
    ///
    /// All RNG draws happen in a fixed order regardless of `n_gpus`
    /// parity or severity, so the timeline is a pure function of
    /// `(spec, n_gpus, horizon_s)`.
    pub fn generate(spec: &FaultScenarioSpec, n_gpus: usize, horizon_s: f64) -> Self {
        let h = horizon_s.max(1e-9);
        let mut rng = SeededRng::seed_from_u64(spec.seed);
        let sev = spec.severity;

        let timeout_s = 0.02 * h;
        let watchdog = match spec.on_exhaustion {
            FailAction::Degrade => WatchdogConfig::degrade(timeout_s),
            FailAction::Abort => WatchdogConfig::abort(timeout_s),
        };

        let mut throttles = Vec::new();
        for _ in 0..sev.throttle_count() {
            let gpu =
                ((rng.next_f64() * n_gpus.max(1) as f64) as usize).min(n_gpus.saturating_sub(1));
            let start_s = (0.10 + 0.50 * rng.next_f64()) * h;
            throttles.push(ThrottleWindow {
                gpu,
                start_s,
                end_s: start_s + 0.15 * h,
                freq_factor: sev.throttle_factor(),
            });
        }

        let group: Vec<GpuId> = (0..n_gpus.min(u16::MAX as usize) as u16)
            .map(GpuId)
            .collect();
        let links = ring_links(&group);
        let pick_link = |rng: &mut SeededRng| -> Option<Link> {
            if links.is_empty() {
                let _ = rng.next_f64(); // keep the draw order severity-independent
                return None;
            }
            Some(links[((rng.next_f64() * links.len() as f64) as usize).min(links.len() - 1)])
        };

        let mut link_faults = Vec::new();
        // One degraded-bandwidth window at every severity.
        let degraded = pick_link(&mut rng);
        let degraded_start = (0.10 + 0.40 * rng.next_f64()) * h;
        if let Some(link) = degraded {
            link_faults.push(LinkFault {
                link,
                start_s: degraded_start,
                end_s: Some(degraded_start + 0.20 * h),
                bw_factor: sev.link_bw_factor(),
            });
        }
        // A transient outage the watchdog can retry through.
        let flap = pick_link(&mut rng);
        let flap_start = (0.15 + 0.40 * rng.next_f64()) * h;
        if sev.has_transient_outage() {
            if let Some(link) = flap {
                link_faults.push(LinkFault {
                    link,
                    start_s: flap_start,
                    end_s: Some(flap_start + 0.4 * watchdog.patience_s()),
                    bw_factor: 0.0,
                });
            }
        }
        // A permanent outage that exhausts the retry budget.
        let dead = pick_link(&mut rng);
        let dead_start = (0.30 + 0.30 * rng.next_f64()) * h;
        if sev.has_dead_link() {
            if let Some(link) = dead {
                link_faults.push(LinkFault {
                    link,
                    start_s: dead_start,
                    end_s: None,
                    bw_factor: 0.0,
                });
            }
        }

        FaultTimeline {
            throttles,
            link_faults,
            ecc: EccFaults {
                seed: spec.seed,
                rate: sev.ecc_rate(),
                retry_s: 0.01 * h,
            },
            watchdog,
            horizon_s: h,
        }
    }

    /// The first link that dies for good (`end_s == None` outage), if any.
    ///
    /// This is the fault recovery policies react to: elastic continuation
    /// evicts one of its endpoints and re-shards onto the survivors.
    pub fn permanent_link_outage(&self) -> Option<&LinkFault> {
        self.link_faults
            .iter()
            .find(|f| f.is_outage() && f.end_s.is_none())
    }

    /// The combined clock cap on `gpu` at `now` (1.0 = uncapped).
    pub fn freq_cap_at(&self, gpu: usize, now: f64) -> f64 {
        self.throttles
            .iter()
            .filter(|w| w.gpu == gpu && w.active_at(now))
            .map(|w| w.freq_factor)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultScenarioSpec {
        FaultScenarioSpec::degrade(42, Severity::Severe)
    }

    #[test]
    fn same_seed_expands_to_the_identical_timeline() {
        let a = FaultTimeline::generate(&spec(), 4, 2.0);
        let b = FaultTimeline::generate(&spec(), 4, 2.0);
        assert_eq!(a, b);
        let c = FaultTimeline::generate(&FaultScenarioSpec::degrade(43, Severity::Severe), 4, 2.0);
        assert_ne!(a, c, "a different seed must move the windows");
    }

    #[test]
    fn severity_ladders_monotonically() {
        let mild = FaultTimeline::generate(&FaultScenarioSpec::degrade(1, Severity::Mild), 4, 1.0);
        let severe =
            FaultTimeline::generate(&FaultScenarioSpec::degrade(1, Severity::Severe), 4, 1.0);
        assert!(mild.throttles.len() < severe.throttles.len());
        assert!(mild.link_faults.iter().all(|f| !f.is_outage()));
        assert!(severe.link_faults.iter().any(|f| f.end_s.is_none()));
    }

    #[test]
    fn windows_scale_with_the_horizon() {
        let short = FaultTimeline::generate(&spec(), 4, 1.0);
        let long = FaultTimeline::generate(&spec(), 4, 10.0);
        assert!((long.throttles[0].start_s / short.throttles[0].start_s - 10.0).abs() < 1e-9);
        assert!((long.watchdog.timeout_s / short.watchdog.timeout_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_nodes_get_no_link_faults() {
        let t = FaultTimeline::generate(&spec(), 1, 1.0);
        assert!(t.link_faults.is_empty());
        assert_eq!(t.throttles.iter().map(|w| w.gpu).max(), Some(0));
    }

    #[test]
    fn freq_caps_compose_within_overlapping_windows() {
        let t = FaultTimeline {
            throttles: vec![
                ThrottleWindow {
                    gpu: 0,
                    start_s: 1.0,
                    end_s: 3.0,
                    freq_factor: 0.8,
                },
                ThrottleWindow {
                    gpu: 0,
                    start_s: 2.0,
                    end_s: 4.0,
                    freq_factor: 0.5,
                },
            ],
            link_faults: vec![],
            ecc: EccFaults {
                seed: 0,
                rate: 0.0,
                retry_s: 0.0,
            },
            watchdog: WatchdogConfig::degrade(1.0),
            horizon_s: 5.0,
        };
        assert_eq!(t.freq_cap_at(0, 0.5), 1.0);
        assert_eq!(t.freq_cap_at(0, 1.5), 0.8);
        assert_eq!(t.freq_cap_at(0, 2.5), 0.5);
        assert_eq!(t.freq_cap_at(0, 3.5), 0.5);
        assert_eq!(t.freq_cap_at(1, 2.5), 1.0, "other GPUs untouched");
    }

    #[test]
    fn descriptor_separates_every_spec_axis() {
        let base = spec().descriptor();
        assert_ne!(
            base,
            FaultScenarioSpec::degrade(43, Severity::Severe).descriptor()
        );
        assert_ne!(
            base,
            FaultScenarioSpec::degrade(42, Severity::Mild).descriptor()
        );
        assert_ne!(
            base,
            FaultScenarioSpec::abort(42, Severity::Severe).descriptor()
        );
        assert!(base.contains("schema=1"));
    }
}
