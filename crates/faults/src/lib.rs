//! Deterministic fault injection for overlap-lab.
//!
//! The paper's characterization assumes a healthy cluster; this crate asks
//! what the overlap/power story looks like when the cluster is *not*
//! healthy. A seeded [`FaultScenarioSpec`] expands into a concrete
//! [`FaultTimeline`] — straggler GPUs (transient DVFS throttles), link
//! degradations, flaps and dead links, ECC-retry compute stalls — and
//! [`FaultyMachine`] injects that timeline into the fluid simulation at
//! exact epoch boundaries. Collectives that stall on an outage are
//! adjudicated by an NCCL-style watchdog (timeout, bounded retries with
//! exponential backoff, then abort or graceful degradation onto the
//! surviving ring).
//!
//! Everything is a pure function of `(experiment, spec)`: the same seed
//! yields a bit-identical fault timeline, metrics and Chrome trace, across
//! runs and across any sweep parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod machine;
mod run;
mod scenario;

pub use cell::{severity_grid, CachedFaultCell, FaultCell};
pub use machine::{AbortInfo, FaultEvent, FaultEventKind, FaultStats, FaultyMachine};
pub use run::{
    fault_annotations, run_under_faults, run_with_faults, FaultError, FaultReport, FaultRun,
    ResilienceMetrics,
};
pub use scenario::{
    EccFaults, FaultScenarioSpec, FaultTimeline, LinkFault, Severity, ThrottleWindow,
    FAULT_SCHEMA_VERSION,
};
