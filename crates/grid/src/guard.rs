//! Execution guards: per-cell wall-clock deadlines with cooperative
//! cancellation and bounded exponential-backoff retries.
//!
//! Sweep cells are pure closures — they cannot be preempted, only asked.
//! The guard therefore runs each cell under a [`CellCtx`] carrying the
//! attempt's deadline; cooperative code calls [`CellCtx::checkpoint`] at
//! natural yield points (the executor does so between simulating a cell
//! and caching it), which unwinds with a private sentinel payload once the
//! deadline has passed. Non-cooperative cells are still bounded: a result
//! that arrives after its deadline is discarded and the attempt counts as
//! a timeout — a late answer is never served, so enabling a deadline never
//! changes *which* value a sweep returns, only whether it returns one.
//!
//! Failed attempts (panics and timeouts alike) are retried up to
//! [`GuardConfig::retries`] extra times with exponential backoff, then
//! classified into a typed [`CellFailure`]. With the default config (no
//! deadline, zero retries) the guard is byte-for-byte the old single-shot
//! `catch_unwind` behavior.

use crate::pool::WorkerPanic;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Once;
use std::time::{Duration, Instant};

/// Deadline and retry policy applied to every cell of a guarded map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Per-attempt wall-clock deadline, seconds. `None` disables deadlines
    /// entirely (no sentinel unwinds, no late-result discards).
    pub cell_timeout_s: Option<f64>,
    /// Extra attempts after a failed first one. `0` keeps the classic
    /// single-shot behavior.
    pub retries: u32,
    /// Backoff before the first retry, seconds (doubles per retry).
    pub backoff_base_s: f64,
    /// Ceiling on any single backoff sleep, seconds.
    pub backoff_cap_s: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            cell_timeout_s: None,
            retries: 0,
            backoff_base_s: 0.01,
            backoff_cap_s: 1.0,
        }
    }
}

impl GuardConfig {
    /// True when this config can alter single-shot behavior at all.
    pub fn is_active(&self) -> bool {
        self.cell_timeout_s.is_some() || self.retries > 0
    }

    /// The backoff slept before retry number `retry` (1-based), seconds:
    /// `base * 2^(retry-1)`, capped.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        let exp = self.backoff_base_s * f64::powi(2.0, retry.saturating_sub(1) as i32);
        exp.min(self.backoff_cap_s).max(0.0)
    }
}

/// The sentinel payload [`CellCtx::checkpoint`] unwinds with. Private to
/// the crate: the guard catches it before it can be mistaken for a real
/// panic, and the quiet hook suppresses its default stderr report.
pub(crate) struct DeadlineExceeded;

/// Per-attempt execution context handed to guarded cell closures.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    attempt: u32,
    started: Instant,
    timeout_s: Option<f64>,
}

impl CellCtx {
    fn new(attempt: u32, timeout_s: Option<f64>) -> Self {
        CellCtx {
            attempt,
            started: Instant::now(),
            timeout_s,
        }
    }

    /// Which attempt this is, 0-based (`0` is the first try).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// True once this attempt's wall-clock deadline has passed.
    pub fn expired(&self) -> bool {
        self.timeout_s
            .is_some_and(|t| self.started.elapsed().as_secs_f64() > t)
    }

    /// Cooperative cancellation point: returns immediately while the
    /// deadline holds, unwinds the attempt with the timeout sentinel once
    /// it has passed. Call at natural yield points in long cells.
    pub fn checkpoint(&self) {
        if self.expired() {
            std::panic::panic_any(DeadlineExceeded);
        }
    }
}

/// Why a guarded cell ultimately failed, after all retries.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFailure {
    /// The closure panicked and no retries were configured (the classic
    /// single-shot outcome).
    Panic(WorkerPanic),
    /// Every attempt exceeded the wall-clock deadline (or the last one
    /// did, after earlier panics).
    Timeout {
        /// The per-attempt deadline that was missed, seconds.
        deadline_s: f64,
        /// Total attempts made.
        attempts: u32,
    },
    /// Retries were configured and every attempt failed; the last failure
    /// was a panic.
    RetriesExhausted {
        /// Total attempts made.
        attempts: u32,
        /// The panic from the final attempt.
        last: WorkerPanic,
    },
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panic(p) => write!(f, "{p}"),
            CellFailure::Timeout {
                deadline_s,
                attempts,
            } => write!(
                f,
                "cell timed out: {attempts} attempt(s) each exceeded the {deadline_s} s deadline"
            ),
            CellFailure::RetriesExhausted { attempts, last } => {
                write!(f, "cell failed after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl std::error::Error for CellFailure {}

/// The outcome of one guarded cell: its result plus attempt accounting.
#[derive(Debug, Clone)]
pub struct CellReport<R> {
    /// The value, or the typed failure after all retries.
    pub result: Result<R, CellFailure>,
    /// Attempts made, `>= 1`.
    pub attempts: u32,
    /// Attempts that hit the deadline (including ones later recovered by a
    /// retry).
    pub timeouts: u32,
}

/// Runs one cell under `guard`: attempts the closure up to `retries + 1`
/// times with exponential backoff between attempts, classifying timeouts
/// (sentinel unwinds and late results) separately from panics. The closure
/// receives the attempt's [`CellCtx`] for cooperative cancellation.
pub fn run_cell<R>(guard: &GuardConfig, f: impl Fn(&CellCtx) -> R) -> CellReport<R> {
    if guard.cell_timeout_s.is_some() {
        install_sentinel_filter();
    }
    let metrics = crate::metrics::grid_metrics();
    let max_attempts = guard.retries.saturating_add(1);
    let mut timeouts = 0u32;
    let mut last_panic: Option<WorkerPanic> = None;
    for attempt in 0..max_attempts {
        metrics.guard_attempts.inc();
        if attempt > 0 {
            metrics.guard_retries.inc();
            let backoff = guard.backoff_s(attempt);
            if backoff > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(backoff));
            }
        }
        let ctx = CellCtx::new(attempt, guard.cell_timeout_s);
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
            Ok(value) => {
                if !ctx.expired() {
                    return CellReport {
                        result: Ok(value),
                        attempts: attempt + 1,
                        timeouts,
                    };
                }
                // A late result is discarded, never served: the deadline
                // is a contract, and serving it only when the retry budget
                // happens to be spent would make outputs timing-dependent.
                timeouts += 1;
                metrics.guard_timeouts.inc();
                last_panic = None;
            }
            Err(payload) => {
                if payload.is::<DeadlineExceeded>() {
                    timeouts += 1;
                    metrics.guard_timeouts.inc();
                    last_panic = None;
                } else {
                    last_panic = Some(WorkerPanic::from_payload(payload));
                }
            }
        }
    }
    let failure = match last_panic {
        None => CellFailure::Timeout {
            deadline_s: guard.cell_timeout_s.unwrap_or(0.0),
            attempts: max_attempts,
        },
        Some(last) if guard.retries == 0 => CellFailure::Panic(last),
        Some(last) => CellFailure::RetriesExhausted {
            attempts: max_attempts,
            last,
        },
    };
    CellReport {
        result: Err(failure),
        attempts: max_attempts,
        timeouts,
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr report for the internal timeout sentinel — a cooperative
/// cancellation is control flow, not a crash — and forwards every other
/// panic to the previously installed hook unchanged.
pub fn install_sentinel_filter() {
    static FILTER: Once = Once::new();
    FILTER.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<DeadlineExceeded>() {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn default_guard_is_single_shot_passthrough() {
        let report = run_cell(&GuardConfig::default(), |ctx| {
            assert_eq!(ctx.attempt(), 0);
            ctx.checkpoint(); // no deadline: never unwinds
            41 + 1
        });
        assert_eq!(report.result.unwrap(), 42);
        assert_eq!((report.attempts, report.timeouts), (1, 0));
    }

    #[test]
    fn a_panic_without_retries_is_a_plain_panic() {
        let report = run_cell(&GuardConfig::default(), |_| -> u32 { panic!("boom") });
        match report.result.unwrap_err() {
            CellFailure::Panic(p) => assert!(p.message.contains("boom")),
            other => panic!("expected Panic, got {other}"),
        }
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn a_transient_panic_is_healed_by_one_retry() {
        let calls = AtomicU32::new(0);
        let guard = GuardConfig {
            retries: 3,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let report = run_cell(&guard, |ctx| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure on attempt {}", ctx.attempt());
            }
            7u32
        });
        assert_eq!(report.result.unwrap(), 7);
        assert_eq!((report.attempts, report.timeouts), (2, 0));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn persistent_panics_exhaust_retries_with_the_last_panic_kept() {
        let guard = GuardConfig {
            retries: 2,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let report = run_cell(&guard, |ctx| -> u32 { panic!("attempt {}", ctx.attempt()) });
        match report.result.unwrap_err() {
            CellFailure::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.message.contains("attempt 2"), "got {last}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn checkpoint_unwinds_expired_attempts_into_timeouts() {
        let guard = GuardConfig {
            cell_timeout_s: Some(0.005),
            retries: 1,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let report = run_cell(&guard, |ctx| -> u32 {
            std::thread::sleep(Duration::from_millis(20));
            ctx.checkpoint();
            unreachable!("the checkpoint must unwind an expired attempt")
        });
        match report.result.unwrap_err() {
            CellFailure::Timeout {
                deadline_s,
                attempts,
            } => {
                assert!((deadline_s - 0.005).abs() < 1e-12);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected Timeout, got {other}"),
        }
        assert_eq!(report.timeouts, 2);
    }

    #[test]
    fn a_late_result_is_discarded_not_served() {
        let calls = AtomicU32::new(0);
        let guard = GuardConfig {
            cell_timeout_s: Some(0.005),
            retries: 2,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        // Slow only on the first attempt: the retry beats the deadline.
        let report = run_cell(&guard, |_| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(25));
            }
            99u32
        });
        assert_eq!(report.result.unwrap(), 99);
        assert_eq!((report.attempts, report.timeouts), (2, 1));
    }

    #[test]
    fn a_timeout_after_panics_classifies_as_timeout() {
        let calls = AtomicU32::new(0);
        let guard = GuardConfig {
            cell_timeout_s: Some(0.005),
            retries: 1,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let report = run_cell(&guard, |_| -> u32 {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt panics");
            }
            std::thread::sleep(Duration::from_millis(25));
            0
        });
        assert!(matches!(
            report.result.unwrap_err(),
            CellFailure::Timeout { attempts: 2, .. }
        ));
        assert_eq!(report.timeouts, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let guard = GuardConfig {
            backoff_base_s: 0.1,
            backoff_cap_s: 0.35,
            ..GuardConfig::default()
        };
        assert!((guard.backoff_s(1) - 0.1).abs() < 1e-12);
        assert!((guard.backoff_s(2) - 0.2).abs() < 1e-12);
        assert!((guard.backoff_s(3) - 0.35).abs() < 1e-12, "capped");
        assert!((guard.backoff_s(10) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn failure_display_is_informative() {
        let timeout = CellFailure::Timeout {
            deadline_s: 1.5,
            attempts: 3,
        };
        assert!(timeout.to_string().contains("1.5 s deadline"));
        let exhausted = CellFailure::RetriesExhausted {
            attempts: 4,
            last: WorkerPanic {
                message: "still broken".into(),
            },
        };
        let text = exhausted.to_string();
        assert!(text.contains("after 4 attempts") && text.contains("still broken"));
    }
}
