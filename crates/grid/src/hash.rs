//! Stable content hashing for cache keys.
//!
//! `std::hash::DefaultHasher` makes no stability promise across Rust
//! releases, and the disk tier of the result cache must be readable by
//! future builds. FNV-1a over a canonical byte encoding is stable by
//! construction, trivially portable, and plenty for the cache's key space
//! (hundreds-to-thousands of cells against a 64-bit digest; the cache
//! additionally stores the full descriptor and verifies it on lookup, so
//! even a collision cannot serve wrong results).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with typed write helpers.
///
/// Writers length- or tag-prefix nothing themselves: callers hashing
/// variable-length runs should include their own delimiters (the grid
/// cache hashes a single canonical descriptor string, which embeds field
/// names and separators, so ambiguity cannot arise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by exact bit pattern (no rounding, `-0.0 != 0.0`).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Noll's test suite).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn same_input_same_digest() {
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            h.write_str(s).write_u64(7).write_f64(0.25);
            h.finish()
        };
        assert_eq!(digest("cell"), digest("cell"));
        assert_ne!(digest("cell"), digest("cell2"));
    }

    #[test]
    fn f64_hash_is_exact_bits() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        a.write_f64(0.0);
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
