//! # olab-grid — the parallel sweep-execution engine
//!
//! Every figure regenerator, ablation, and CLI sweep in overlap-lab walks a
//! grid of independent, deterministic simulation cells. This crate is the
//! single execution engine behind all of them:
//!
//! * [`pool::Pool`] — a std-only work-stealing worker pool
//!   (`std::thread::scope` + per-worker deques) that fans cells out across
//!   cores while collecting results in input order;
//! * [`cache::ResultCache`] — a content-addressed result cache keyed by the
//!   stable FNV-1a digest ([`hash`]) of a canonical cell descriptor, with an
//!   in-memory tier and an optional on-disk tier (hand-rolled byte codec,
//!   zero dependencies) so repeated invocations skip already-simulated
//!   cells;
//! * [`telemetry::SweepStats`] — cells/s, cache hit rate, and wall-clock
//!   vs. cumulative simulated time, surfaced in every report;
//! * [`Executor`] — the composition: look up each cell, simulate only the
//!   misses, populate both tiers, and return outputs in input order.
//!
//! ## Determinism guarantee
//!
//! The simulator is deterministic, so a parallel sweep must be
//! *bit-identical* to a serial one. The engine guarantees its half of that
//! contract structurally: cells never share mutable state, the pool
//! neither reorders nor duplicates work, and outputs are collected by input
//! index. `tests/integration_grid.rs` in `olab-core` pins the end-to-end
//! invariant against the paper's main grid.
//!
//! The crate is deliberately generic — it knows nothing about experiments.
//! A cell is anything implementing [`GridJob`]: it names itself via a
//! canonical [`GridJob::descriptor`] (which must cover *every* input that
//! can change the result, including calibration-constant versions) and
//! computes a [`cache::CacheValue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod pool;
pub mod progress;
pub mod telemetry;

pub use cache::{CacheCounters, CacheTier, CacheValue, Reader, ResultCache, Writer};
pub use hash::{fnv1a_64, StableHasher};
pub use pool::{Pool, WorkerPanic};
pub use progress::{CellProgress, CellResolution, ProgressSink};
pub use telemetry::SweepStats;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One independent, deterministic unit of sweep work.
pub trait GridJob: Sync {
    /// The computed result.
    type Output: CacheValue;

    /// The canonical content descriptor of this cell. Two jobs with equal
    /// descriptors **must** compute identical outputs; any input that can
    /// change the output (configuration fields, calibration versions,
    /// schema revisions) must appear in it.
    fn descriptor(&self) -> String;

    /// Computes the result. Must be deterministic and side-effect free.
    fn execute(&self) -> Self::Output;
}

/// How one cell of a sweep was resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellSource {
    Hit(CacheTier),
    Computed {
        /// Wall-clock spent simulating this cell, seconds.
        cell_s: f64,
    },
}

/// The outputs of one sweep, in input order, plus its telemetry.
///
/// A cell whose closure panicked occupies its slot with the captured
/// [`WorkerPanic`] instead of aborting the sweep; everything else completes
/// normally.
#[derive(Debug, Clone)]
pub struct SweepRun<V> {
    /// Per-cell outputs, index-aligned with the submitted jobs.
    pub outputs: Vec<Result<V, WorkerPanic>>,
    /// Throughput and cache statistics.
    pub stats: SweepStats,
}

/// The sweep engine: a worker pool over a shared result cache.
#[derive(Debug)]
pub struct Executor<V> {
    pool: Pool,
    cache: ResultCache<V>,
}

impl<V: CacheValue> Executor<V> {
    /// An engine with `available_parallelism` workers and an in-memory
    /// cache.
    pub fn new() -> Self {
        Executor {
            pool: Pool::with_available_parallelism(),
            cache: ResultCache::in_memory(),
        }
    }

    /// Overrides the worker count (`1` forces a fully serial sweep).
    pub fn with_jobs(mut self, workers: usize) -> Self {
        self.pool = Pool::new(workers);
        self
    }

    /// Adds a disk tier under `dir` to the cache.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> io::Result<Self> {
        self.cache = ResultCache::with_disk(dir)?;
        Ok(self)
    }

    /// The worker pool in use.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The cache in use (for counter inspection in tests and telemetry).
    pub fn cache(&self) -> &ResultCache<V> {
        &self.cache
    }

    /// Runs every job — cache lookups first, simulations for the misses —
    /// and returns outputs in input order with sweep telemetry.
    pub fn run<J: GridJob<Output = V>>(&self, jobs: &[J]) -> SweepRun<V> {
        self.run_with_progress(jobs, None)
    }

    /// Like [`Executor::run`], reporting each resolved cell to `sink` as
    /// it completes (see [`ProgressSink`] for threading and ordering
    /// semantics). Time spent inside the sink is accumulated into
    /// [`SweepStats::observer_s`]; with `None` this is exactly
    /// [`Executor::run`] — no timing, no counting, no overhead.
    pub fn run_with_progress<J: GridJob<Output = V>>(
        &self,
        jobs: &[J],
        sink: Option<&dyn ProgressSink>,
    ) -> SweepRun<V> {
        let start = Instant::now();
        let quarantined_before = self.cache.counters().quarantined;
        let total = jobs.len();
        let completed = AtomicUsize::new(0);
        let observer_ns = AtomicU64::new(0);
        let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
        // `try_map`, not `map`: a panicking cell fails only its own slot.
        // The panic escapes `execute` before the insert, so the cache never
        // learns a poisoned descriptor — a retry re-executes the cell.
        let resolved = self.pool.try_map(&indexed, |&(index, job)| {
            let descriptor = job.descriptor();
            let (value, source) = match self.cache.lookup(&descriptor) {
                Some((value, tier)) => (value, CellSource::Hit(tier)),
                None => {
                    let cell_start = Instant::now();
                    let value = job.execute();
                    let cell_s = cell_start.elapsed().as_secs_f64();
                    self.cache.insert(&descriptor, value.clone());
                    (value, CellSource::Computed { cell_s })
                }
            };
            if let Some(sink) = sink {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                let resolution = match source {
                    CellSource::Hit(CacheTier::Memory) => CellResolution::MemoryHit,
                    CellSource::Hit(CacheTier::Disk) => CellResolution::DiskHit,
                    CellSource::Computed { .. } => CellResolution::Simulated,
                };
                let sink_start = Instant::now();
                sink.on_cell(&CellProgress {
                    completed: done,
                    total,
                    index,
                    descriptor: &descriptor,
                    resolution,
                    wall_s: start.elapsed().as_secs_f64(),
                });
                observer_ns.fetch_add(sink_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            (value, source)
        });

        let mut stats = SweepStats {
            cells: jobs.len(),
            workers: self.pool.workers(),
            wall_s: start.elapsed().as_secs_f64(),
            observer_s: observer_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            quarantined: (self.cache.counters().quarantined - quarantined_before) as usize,
            ..SweepStats::default()
        };
        let mut outputs = Vec::with_capacity(resolved.len());
        for slot in resolved {
            match slot {
                Ok((value, source)) => {
                    match source {
                        CellSource::Hit(CacheTier::Memory) => stats.memory_hits += 1,
                        CellSource::Hit(CacheTier::Disk) => stats.disk_hits += 1,
                        CellSource::Computed { cell_s } => {
                            stats.simulated += 1;
                            stats.cumulative_cell_s += cell_s;
                        }
                    }
                    outputs.push(Ok(value));
                }
                Err(panic) => {
                    stats.panicked += 1;
                    outputs.push(Err(panic));
                }
            }
        }
        SweepRun { outputs, stats }
    }
}

impl<V: CacheValue> Default for Executor<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A toy job: squares its input, counting real executions.
    struct Square<'a> {
        x: u64,
        executions: &'a AtomicUsize,
    }

    impl CacheValue for u64 {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(*self);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            r.get_u64()
        }
    }

    impl GridJob for Square<'_> {
        type Output = u64;
        fn descriptor(&self) -> String {
            format!("square x={}", self.x)
        }
        fn execute(&self) -> u64 {
            self.executions.fetch_add(1, Ordering::SeqCst);
            self.x * self.x
        }
    }

    fn jobs<'a>(xs: &[u64], executions: &'a AtomicUsize) -> Vec<Square<'a>> {
        xs.iter().map(|&x| Square { x, executions }).collect()
    }

    #[test]
    fn outputs_come_back_in_input_order() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..100).rev().collect();
        let run = Executor::new().with_jobs(8).run(&jobs(&xs, &executions));
        let expect: Vec<Result<u64, WorkerPanic>> = xs.iter().map(|x| Ok(x * x)).collect();
        assert_eq!(run.outputs, expect);
        assert_eq!(run.stats.cells, 100);
        assert_eq!(run.stats.simulated, 100);
    }

    #[test]
    fn second_sweep_is_all_memory_hits() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..20).collect();
        let engine = Executor::new().with_jobs(4);
        let cold = engine.run(&jobs(&xs, &executions));
        let warm = engine.run(&jobs(&xs, &executions));
        assert_eq!(cold.outputs, warm.outputs);
        assert_eq!(executions.load(Ordering::SeqCst), 20, "no recomputation");
        assert_eq!(warm.stats.simulated, 0);
        assert_eq!(warm.stats.memory_hits, 20);
        assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_feeds_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("olab-grid-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..10).collect();
        {
            let engine = Executor::new().with_disk_cache(&dir).unwrap();
            engine.run(&jobs(&xs, &executions));
        }
        let engine = Executor::new().with_disk_cache(&dir).unwrap();
        let warm = engine.run(&jobs(&xs, &executions));
        assert_eq!(executions.load(Ordering::SeqCst), 10);
        assert_eq!(warm.stats.disk_hits, 10);
        assert_eq!(warm.stats.simulated, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_disk_entry_is_quarantined_recomputed_and_never_served() {
        let dir = std::env::temp_dir().join(format!("olab-grid-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..10).collect();
        {
            let engine = Executor::new().with_disk_cache(&dir).unwrap();
            engine.run(&jobs(&xs, &executions));
        }
        // Rot one entry on disk: flip a bit in the middle of the file.
        let key = ResultCache::<u64>::key_of("square x=5");
        let path = dir.join(format!("{key:016x}.cell"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let engine = Executor::new().with_disk_cache(&dir).unwrap();
        let run = engine.run(&jobs(&xs, &executions));
        // Every output is still correct — the rotten entry was recomputed,
        // not served.
        let expect: Vec<Result<u64, WorkerPanic>> = xs.iter().map(|x| Ok(x * x)).collect();
        assert_eq!(run.outputs, expect);
        assert_eq!(run.stats.quarantined, 1);
        assert_eq!(run.stats.simulated, 1);
        assert_eq!(run.stats.disk_hits, 9);
        assert!(run.stats.summary().contains("1 quarantined"));
        assert!(
            dir.join(format!("{key:016x}.cell.corrupt")).exists(),
            "rotten bytes kept for post-mortem"
        );
        assert!(path.exists(), "recompute rewrote the canonical entry");

        // The healed cache serves everything again, quietly.
        let healed = Executor::<u64>::new().with_disk_cache(&dir).unwrap();
        let warm = healed.run(&jobs(&xs, &executions));
        assert_eq!(warm.stats.disk_hits, 10);
        assert_eq!(warm.stats.quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_cells_in_one_sweep_share_no_ordering_hazard() {
        // Duplicates may race (both simulate) but must both return the
        // right answer in the right slots.
        let executions = AtomicUsize::new(0);
        let xs = vec![3, 3, 3, 3, 3, 3, 3, 3];
        let run = Executor::new().with_jobs(4).run(&jobs(&xs, &executions));
        assert_eq!(run.outputs, vec![Ok(9); 8]);
        assert_eq!(run.stats.simulated + run.stats.memory_hits, 8);
    }

    /// A toy job that panics for one input, squaring the rest.
    struct Volatile {
        x: u64,
    }

    impl GridJob for Volatile {
        type Output = u64;
        fn descriptor(&self) -> String {
            format!("volatile x={}", self.x)
        }
        fn execute(&self) -> u64 {
            if self.x == 7 {
                panic!("cell x=7 blew up");
            }
            self.x * self.x
        }
    }

    #[test]
    fn a_panicking_cell_fails_its_slot_and_is_never_cached() {
        let xs: Vec<u64> = (0..16).collect();
        let make = || xs.iter().map(|&x| Volatile { x }).collect::<Vec<_>>();
        let engine = Executor::new().with_jobs(4);
        let run = engine.run(&make());
        assert_eq!(run.stats.panicked, 1);
        assert_eq!(run.stats.simulated, 15);
        for (i, slot) in run.outputs.iter().enumerate() {
            if i == 7 {
                let p = slot.as_ref().unwrap_err();
                assert!(p.message.contains("cell x=7 blew up"), "got {p}");
            } else {
                assert_eq!(*slot.as_ref().unwrap(), (i as u64) * (i as u64));
            }
        }
        assert!(run.stats.summary().contains("1 panicked"));

        // The panicked descriptor was never cached: a second sweep retries
        // it (and panics again), while the 15 good cells hit memory.
        let warm = engine.run(&make());
        assert_eq!(warm.stats.memory_hits, 15);
        assert_eq!(warm.stats.panicked, 1);
        assert_eq!(warm.stats.simulated, 0);
    }

    /// Collects every progress update behind a mutex.
    #[derive(Default)]
    struct Collecting {
        seen: std::sync::Mutex<Vec<(usize, usize, String, CellResolution)>>,
    }

    impl ProgressSink for Collecting {
        fn on_cell(&self, p: &CellProgress<'_>) {
            assert!(p.completed >= 1 && p.completed <= p.total);
            assert!(p.wall_s >= 0.0);
            self.seen.lock().unwrap().push((
                p.completed,
                p.index,
                p.descriptor.to_string(),
                p.resolution,
            ));
        }
    }

    #[test]
    fn progress_sink_sees_every_cell_exactly_once() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..24).collect();
        let engine = Executor::new().with_jobs(4);
        let sink = Collecting::default();
        let cold = engine.run_with_progress(&jobs(&xs, &executions), Some(&sink));
        assert_eq!(cold.stats.simulated, 24);
        assert!(
            cold.stats.observer_s > 0.0,
            "sink time must be accounted: {}",
            cold.stats.observer_s
        );
        {
            let mut seen = sink.seen.lock().unwrap();
            assert_eq!(seen.len(), 24);
            // Every input index reported exactly once, each as a miss, and
            // the completion counter is a permutation of 1..=24.
            let mut indexes: Vec<usize> = seen.iter().map(|u| u.1).collect();
            indexes.sort_unstable();
            assert_eq!(indexes, (0..24).collect::<Vec<_>>());
            let mut counts: Vec<usize> = seen.iter().map(|u| u.0).collect();
            counts.sort_unstable();
            assert_eq!(counts, (1..=24).collect::<Vec<_>>());
            for (_, index, descriptor, resolution) in seen.iter() {
                assert_eq!(descriptor, &format!("square x={index}"));
                assert_eq!(*resolution, CellResolution::Simulated);
            }
            seen.clear();
        }

        // A warm sweep reports the same cells as memory hits.
        let warm = engine.run_with_progress(&jobs(&xs, &executions), Some(&sink));
        assert_eq!(warm.stats.memory_hits, 24);
        let seen = sink.seen.lock().unwrap();
        assert_eq!(seen.len(), 24);
        assert!(seen.iter().all(|u| u.3 == CellResolution::MemoryHit));
    }

    #[test]
    fn unobserved_sweeps_report_zero_observer_time() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..8).collect();
        let run = Executor::new().with_jobs(2).run(&jobs(&xs, &executions));
        assert_eq!(run.stats.observer_s, 0.0);
        assert!(!run.stats.summary().contains("observers"));
    }
}
