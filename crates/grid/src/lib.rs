//! # olab-grid — the parallel sweep-execution engine
//!
//! Every figure regenerator, ablation, and CLI sweep in overlap-lab walks a
//! grid of independent, deterministic simulation cells. This crate is the
//! single execution engine behind all of them:
//!
//! * [`pool::Pool`] — a std-only work-stealing worker pool
//!   (`std::thread::scope` + per-worker deques) that fans cells out across
//!   cores while collecting results in input order;
//! * [`cache::ResultCache`] — a content-addressed result cache keyed by the
//!   stable FNV-1a digest ([`hash`]) of a canonical cell descriptor, with an
//!   in-memory tier and an optional on-disk tier (hand-rolled byte codec,
//!   zero dependencies) so repeated invocations skip already-simulated
//!   cells;
//! * [`telemetry::SweepStats`] — cells/s, cache hit rate, and wall-clock
//!   vs. cumulative simulated time, surfaced in every report;
//! * [`Executor`] — the composition: look up each cell, simulate only the
//!   misses, populate both tiers, and return outputs in input order.
//!
//! ## Determinism guarantee
//!
//! The simulator is deterministic, so a parallel sweep must be
//! *bit-identical* to a serial one. The engine guarantees its half of that
//! contract structurally: cells never share mutable state, the pool
//! neither reorders nor duplicates work, and outputs are collected by input
//! index. `tests/integration_grid.rs` in `olab-core` pins the end-to-end
//! invariant against the paper's main grid.
//!
//! The crate is deliberately generic — it knows nothing about experiments.
//! A cell is anything implementing [`GridJob`]: it names itself via a
//! canonical [`GridJob::descriptor`] (which must cover *every* input that
//! can change the result, including calibration-constant versions) and
//! computes a [`cache::CacheValue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod coalesce;
pub mod guard;
pub mod hash;
pub mod metrics;
pub mod pool;
pub mod progress;
pub mod telemetry;

pub use admission::{AdmissionQueue, RejectReason, Rejected};
pub use cache::{
    CacheCost, CacheCounters, CacheHealth, CacheTier, CacheValue, Reader, ResultCache, Writer,
};
#[cfg(any(test, feature = "chaos"))]
pub use chaos::ChaosPlan;
pub use coalesce::{CoalesceMap, Join, Leader, WaitOutcome, Waiter};
pub use guard::{CellCtx, CellFailure, CellReport, GuardConfig};
pub use hash::{fnv1a_64, StableHasher};
pub use pool::{Pool, WorkerPanic};
pub use progress::{CellProgress, CellResolution, ProgressSink};
pub use telemetry::SweepStats;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One independent, deterministic unit of sweep work.
pub trait GridJob: Sync {
    /// The computed result.
    type Output: CacheValue;

    /// The canonical content descriptor of this cell. Two jobs with equal
    /// descriptors **must** compute identical outputs; any input that can
    /// change the output (configuration fields, calibration versions,
    /// schema revisions) must appear in it.
    fn descriptor(&self) -> String;

    /// Computes the result. Must be deterministic and side-effect free.
    fn execute(&self) -> Self::Output;

    /// How expensive this cell's value would be to *recompute*, feeding
    /// the capped disk tier's admission/eviction policy (see
    /// [`cache::CacheCost`]): cheap cells are evicted before expensive
    /// ones. Must be a pure function of the cell — the determinism
    /// contract extends to the eviction order. Defaults to `Standard`
    /// (exactly the pre-policy behavior).
    fn cost_hint(&self) -> cache::CacheCost {
        cache::CacheCost::Standard
    }
}

/// How one cell of a sweep was resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellSource {
    Hit(CacheTier),
    Computed {
        /// Wall-clock spent simulating this cell, seconds.
        cell_s: f64,
    },
}

/// The outputs of one sweep, in input order, plus its telemetry.
///
/// A cell that ultimately failed — a panic, a missed deadline, or an
/// exhausted retry budget — occupies its slot with a typed
/// [`CellFailure`] instead of aborting the sweep; everything else
/// completes normally.
#[derive(Debug, Clone)]
pub struct SweepRun<V> {
    /// Per-cell outputs, index-aligned with the submitted jobs.
    pub outputs: Vec<Result<V, CellFailure>>,
    /// Throughput and cache statistics.
    pub stats: SweepStats,
}

/// The sweep engine: a worker pool over a shared result cache, with
/// optional execution guards (deadlines + retries) and, in test/chaos
/// builds, deterministic fault injection.
#[derive(Debug)]
pub struct Executor<V> {
    pool: Pool,
    cache: ResultCache<V>,
    guard: GuardConfig,
    #[cfg(any(test, feature = "chaos"))]
    chaos: Option<ChaosPlan>,
}

impl<V: CacheValue> Executor<V> {
    /// An engine with `available_parallelism` workers, an in-memory
    /// cache, and no guards (single-shot cells, no deadlines).
    pub fn new() -> Self {
        Executor {
            pool: Pool::with_available_parallelism(),
            cache: ResultCache::in_memory(),
            guard: GuardConfig::default(),
            #[cfg(any(test, feature = "chaos"))]
            chaos: None,
        }
    }

    /// Overrides the worker count (`1` forces a fully serial sweep).
    pub fn with_jobs(mut self, workers: usize) -> Self {
        self.pool = Pool::new(workers);
        self
    }

    /// Adds a disk tier under `dir` to the cache.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> io::Result<Self> {
        self.cache = ResultCache::with_disk(dir)?;
        #[cfg(any(test, feature = "chaos"))]
        self.cache.set_chaos(self.chaos);
        Ok(self)
    }

    /// Caps the disk tier at `max_bytes`, evicting deterministically
    /// (cold entries first, ascending key) now and at the end of every
    /// run. No-op until a disk cache is attached.
    pub fn with_cache_cap(mut self, max_bytes: u64) -> Self {
        self.cache.set_disk_cap(Some(max_bytes));
        self
    }

    /// Applies per-cell deadlines and retry policy to every subsequent
    /// run (see [`GuardConfig`]).
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Arms deterministic fault injection on the executor and its cache
    /// (see [`chaos`]). Test/feature-gated.
    #[cfg(any(test, feature = "chaos"))]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self.cache.set_chaos(Some(plan));
        self
    }

    /// The worker pool in use.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The guard policy in use.
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// The cache in use (for counter inspection in tests and telemetry).
    pub fn cache(&self) -> &ResultCache<V> {
        &self.cache
    }

    /// Runs every job — cache lookups first, simulations for the misses —
    /// and returns outputs in input order with sweep telemetry.
    pub fn run<J: GridJob<Output = V>>(&self, jobs: &[J]) -> SweepRun<V> {
        self.run_with_progress(jobs, None)
    }

    /// Like [`Executor::run`], reporting each resolved cell to `sink` as
    /// it completes (see [`ProgressSink`] for threading and ordering
    /// semantics). Time spent inside the sink is accumulated into
    /// [`SweepStats::observer_s`]; with `None` this is exactly
    /// [`Executor::run`] — no timing, no counting, no overhead.
    pub fn run_with_progress<J: GridJob<Output = V>>(
        &self,
        jobs: &[J],
        sink: Option<&dyn ProgressSink>,
    ) -> SweepRun<V> {
        self.run_guarded(jobs, &self.guard, sink)
    }

    /// Like [`Executor::run_with_progress`] but under `guard` instead of
    /// the engine-level policy, leaving the engine untouched. This is the
    /// deadline-propagation hook for a serving front-end: a request-scoped
    /// deadline (e.g. an HTTP `timeout_ms`) becomes the cooperative
    /// [`CellCtx`] deadline of exactly this run, so a dead client's cell
    /// is abandoned at the next checkpoint instead of stranding a worker,
    /// while concurrent runs keep their own budgets. `run` takes `&self`,
    /// so differently-guarded runs may execute concurrently over the
    /// shared cache.
    pub fn run_guarded<J: GridJob<Output = V>>(
        &self,
        jobs: &[J],
        guard: &GuardConfig,
        sink: Option<&dyn ProgressSink>,
    ) -> SweepRun<V> {
        let start = Instant::now();
        let counters_before = self.cache.counters();
        let total = jobs.len();
        let completed = AtomicUsize::new(0);
        let observer_ns = AtomicU64::new(0);
        let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
        // `try_map_guarded`: a failing cell (panic, missed deadline,
        // exhausted retries) fails only its own slot. Failures escape
        // `execute` before the insert, so the cache never learns a
        // poisoned descriptor — a retry re-executes the cell.
        let reports = self
            .pool
            .try_map_guarded(&indexed, guard, |&(index, job), ctx| {
                let descriptor = job.descriptor();
                if let Some(sink) = sink {
                    if ctx.attempt() > 0 {
                        let sink_start = Instant::now();
                        sink.on_retry(index, &descriptor, ctx.attempt());
                        observer_ns
                            .fetch_add(sink_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                }
                let (value, source) = match self.cache.lookup(&descriptor) {
                    Some((value, tier)) => (value, CellSource::Hit(tier)),
                    None => {
                        #[cfg(any(test, feature = "chaos"))]
                        if let Some(plan) = &self.chaos {
                            let key = ResultCache::<V>::key_of(&descriptor);
                            if plan.worker_panic(key, ctx.attempt()) {
                                panic!(
                                    "chaos: injected worker panic for cell {key:016x} attempt {}",
                                    ctx.attempt()
                                );
                            }
                            if plan.slow_cell(key, ctx.attempt()) {
                                std::thread::sleep(std::time::Duration::from_millis(
                                    plan.slow_cell_ms,
                                ));
                            }
                        }
                        let cell_start = Instant::now();
                        let value = job.execute();
                        let cell_s = cell_start.elapsed().as_secs_f64();
                        if olab_metrics::enabled() {
                            metrics::grid_metrics()
                                .cell_exec_ns
                                .observe((cell_s * 1e9) as u64);
                        }
                        // Cooperative cancellation point: an attempt past
                        // its deadline unwinds here, *before* the insert —
                        // a timed-out attempt never populates the cache.
                        ctx.checkpoint();
                        // The cost hint only matters to the disk tier's
                        // eviction order; memory-only caches skip it.
                        let cost = if self.cache.disk_dir().is_some() {
                            job.cost_hint()
                        } else {
                            cache::CacheCost::Standard
                        };
                        self.cache
                            .insert_with_cost(&descriptor, value.clone(), cost);
                        (value, CellSource::Computed { cell_s })
                    }
                };
                if let Some(sink) = sink {
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    let resolution = match source {
                        CellSource::Hit(CacheTier::Memory) => CellResolution::MemoryHit,
                        CellSource::Hit(CacheTier::Disk) => CellResolution::DiskHit,
                        CellSource::Computed { .. } => CellResolution::Simulated,
                    };
                    let sink_start = Instant::now();
                    sink.on_cell(&CellProgress {
                        completed: done,
                        total,
                        index,
                        descriptor: &descriptor,
                        resolution,
                        attempts: ctx.attempt() + 1,
                        wall_s: start.elapsed().as_secs_f64(),
                    });
                    observer_ns
                        .fetch_add(sink_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                (value, source)
            });

        // End-of-run (not per-insert) cap enforcement: the candidate set
        // and order depend only on the directory and the touched-key set,
        // both identical between serial and parallel sweeps — the eviction
        // happens at a deterministic point, so directories stay
        // byte-identical.
        self.cache.enforce_disk_cap();
        let counters_after = self.cache.counters();

        // One fresh scan feeds both the stats and any `on_degraded`
        // reporting below — offline sweeps and a serving `/readyz` read
        // the same `CacheHealth` source of truth.
        let health = self.cache.health();
        let mut stats = SweepStats {
            cells: jobs.len(),
            workers: self.pool.workers(),
            wall_s: start.elapsed().as_secs_f64(),
            observer_s: observer_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            quarantined: (counters_after.quarantined - counters_before.quarantined) as usize,
            evicted: (counters_after.evicted - counters_before.evicted) as usize,
            degraded: health.degraded,
            disk_enabled: health.disk_enabled,
            disk_entries: health.disk_entries,
            disk_bytes: health.disk_bytes,
            ..SweepStats::default()
        };
        let mut outputs = Vec::with_capacity(reports.len());
        for (index, report) in reports.into_iter().enumerate() {
            stats.retries += report.attempts.saturating_sub(1) as usize;
            stats.timeouts += report.timeouts as usize;
            match report.result {
                Ok((value, source)) => {
                    match source {
                        CellSource::Hit(CacheTier::Memory) => stats.memory_hits += 1,
                        CellSource::Hit(CacheTier::Disk) => stats.disk_hits += 1,
                        CellSource::Computed { cell_s } => {
                            stats.simulated += 1;
                            stats.cumulative_cell_s += cell_s;
                        }
                    }
                    outputs.push(Ok(value));
                }
                Err(failure) => {
                    stats.panicked += 1;
                    if let Some(sink) = sink {
                        if let CellFailure::Timeout {
                            deadline_s,
                            attempts,
                        } = &failure
                        {
                            sink.on_timeout(
                                index,
                                &jobs[index].descriptor(),
                                *deadline_s,
                                *attempts,
                            );
                        }
                    }
                    outputs.push(Err(failure));
                }
            }
        }
        if let Some(sink) = sink {
            if stats.evicted > 0 {
                sink.on_evict(
                    stats.evicted,
                    health.disk_bytes,
                    health.max_disk_bytes.unwrap_or(0),
                );
            }
            if stats.degraded {
                sink.on_degraded(health.degraded_reason.as_deref().unwrap_or("unknown"));
            }
        }
        SweepRun { outputs, stats }
    }
}

impl<V: CacheValue> Default for Executor<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A toy job: squares its input, counting real executions.
    struct Square<'a> {
        x: u64,
        executions: &'a AtomicUsize,
    }

    impl CacheValue for u64 {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(*self);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            r.get_u64()
        }
    }

    impl GridJob for Square<'_> {
        type Output = u64;
        fn descriptor(&self) -> String {
            format!("square x={}", self.x)
        }
        fn execute(&self) -> u64 {
            self.executions.fetch_add(1, Ordering::SeqCst);
            self.x * self.x
        }
    }

    fn jobs<'a>(xs: &[u64], executions: &'a AtomicUsize) -> Vec<Square<'a>> {
        xs.iter().map(|&x| Square { x, executions }).collect()
    }

    #[test]
    fn outputs_come_back_in_input_order() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..100).rev().collect();
        let run = Executor::new().with_jobs(8).run(&jobs(&xs, &executions));
        let expect: Vec<Result<u64, CellFailure>> = xs.iter().map(|x| Ok(x * x)).collect();
        assert_eq!(run.outputs, expect);
        assert_eq!(run.stats.cells, 100);
        assert_eq!(run.stats.simulated, 100);
    }

    #[test]
    fn second_sweep_is_all_memory_hits() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..20).collect();
        let engine = Executor::new().with_jobs(4);
        let cold = engine.run(&jobs(&xs, &executions));
        let warm = engine.run(&jobs(&xs, &executions));
        assert_eq!(cold.outputs, warm.outputs);
        assert_eq!(executions.load(Ordering::SeqCst), 20, "no recomputation");
        assert_eq!(warm.stats.simulated, 0);
        assert_eq!(warm.stats.memory_hits, 20);
        assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_feeds_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("olab-grid-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..10).collect();
        {
            let engine = Executor::new().with_disk_cache(&dir).unwrap();
            engine.run(&jobs(&xs, &executions));
        }
        let engine = Executor::new().with_disk_cache(&dir).unwrap();
        let warm = engine.run(&jobs(&xs, &executions));
        assert_eq!(executions.load(Ordering::SeqCst), 10);
        assert_eq!(warm.stats.disk_hits, 10);
        assert_eq!(warm.stats.simulated, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_disk_entry_is_quarantined_recomputed_and_never_served() {
        let dir = std::env::temp_dir().join(format!("olab-grid-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..10).collect();
        {
            let engine = Executor::new().with_disk_cache(&dir).unwrap();
            engine.run(&jobs(&xs, &executions));
        }
        // Rot one entry on disk: flip a bit in the middle of the file.
        let key = ResultCache::<u64>::key_of("square x=5");
        let path = dir.join(format!("{key:016x}.cell"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let engine = Executor::new().with_disk_cache(&dir).unwrap();
        let run = engine.run(&jobs(&xs, &executions));
        // Every output is still correct — the rotten entry was recomputed,
        // not served.
        let expect: Vec<Result<u64, CellFailure>> = xs.iter().map(|x| Ok(x * x)).collect();
        assert_eq!(run.outputs, expect);
        assert_eq!(run.stats.quarantined, 1);
        assert_eq!(run.stats.simulated, 1);
        assert_eq!(run.stats.disk_hits, 9);
        assert!(run.stats.summary().contains("1 quarantined"));
        assert!(
            dir.join(format!("{key:016x}.cell.corrupt")).exists(),
            "rotten bytes kept for post-mortem"
        );
        assert!(path.exists(), "recompute rewrote the canonical entry");

        // The healed cache serves everything again, quietly.
        let healed = Executor::<u64>::new().with_disk_cache(&dir).unwrap();
        let warm = healed.run(&jobs(&xs, &executions));
        assert_eq!(warm.stats.disk_hits, 10);
        assert_eq!(warm.stats.quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_cells_in_one_sweep_share_no_ordering_hazard() {
        // Duplicates may race (both simulate) but must both return the
        // right answer in the right slots.
        let executions = AtomicUsize::new(0);
        let xs = vec![3, 3, 3, 3, 3, 3, 3, 3];
        let run = Executor::new().with_jobs(4).run(&jobs(&xs, &executions));
        assert_eq!(run.outputs, vec![Ok(9); 8]);
        assert_eq!(run.stats.simulated + run.stats.memory_hits, 8);
    }

    /// A toy job that panics for one input, squaring the rest.
    struct Volatile {
        x: u64,
    }

    impl GridJob for Volatile {
        type Output = u64;
        fn descriptor(&self) -> String {
            format!("volatile x={}", self.x)
        }
        fn execute(&self) -> u64 {
            if self.x == 7 {
                panic!("cell x=7 blew up");
            }
            self.x * self.x
        }
    }

    #[test]
    fn a_panicking_cell_fails_its_slot_and_is_never_cached() {
        let xs: Vec<u64> = (0..16).collect();
        let make = || xs.iter().map(|&x| Volatile { x }).collect::<Vec<_>>();
        let engine = Executor::new().with_jobs(4);
        let run = engine.run(&make());
        assert_eq!(run.stats.panicked, 1);
        assert_eq!(run.stats.simulated, 15);
        for (i, slot) in run.outputs.iter().enumerate() {
            if i == 7 {
                match slot.as_ref().unwrap_err() {
                    CellFailure::Panic(p) => {
                        assert!(p.message.contains("cell x=7 blew up"), "got {p}")
                    }
                    other => panic!("expected a plain panic, got {other}"),
                }
            } else {
                assert_eq!(*slot.as_ref().unwrap(), (i as u64) * (i as u64));
            }
        }
        assert!(run.stats.summary().contains("1 panicked"));

        // The panicked descriptor was never cached: a second sweep retries
        // it (and panics again), while the 15 good cells hit memory.
        let warm = engine.run(&make());
        assert_eq!(warm.stats.memory_hits, 15);
        assert_eq!(warm.stats.panicked, 1);
        assert_eq!(warm.stats.simulated, 0);
    }

    /// Collects every progress update behind a mutex.
    #[derive(Default)]
    struct Collecting {
        seen: std::sync::Mutex<Vec<(usize, usize, String, CellResolution)>>,
    }

    impl ProgressSink for Collecting {
        fn on_cell(&self, p: &CellProgress<'_>) {
            assert!(p.completed >= 1 && p.completed <= p.total);
            assert!(p.wall_s >= 0.0);
            self.seen.lock().unwrap().push((
                p.completed,
                p.index,
                p.descriptor.to_string(),
                p.resolution,
            ));
        }
    }

    #[test]
    fn progress_sink_sees_every_cell_exactly_once() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..24).collect();
        let engine = Executor::new().with_jobs(4);
        let sink = Collecting::default();
        let cold = engine.run_with_progress(&jobs(&xs, &executions), Some(&sink));
        assert_eq!(cold.stats.simulated, 24);
        assert!(
            cold.stats.observer_s > 0.0,
            "sink time must be accounted: {}",
            cold.stats.observer_s
        );
        {
            let mut seen = sink.seen.lock().unwrap();
            assert_eq!(seen.len(), 24);
            // Every input index reported exactly once, each as a miss, and
            // the completion counter is a permutation of 1..=24.
            let mut indexes: Vec<usize> = seen.iter().map(|u| u.1).collect();
            indexes.sort_unstable();
            assert_eq!(indexes, (0..24).collect::<Vec<_>>());
            let mut counts: Vec<usize> = seen.iter().map(|u| u.0).collect();
            counts.sort_unstable();
            assert_eq!(counts, (1..=24).collect::<Vec<_>>());
            for (_, index, descriptor, resolution) in seen.iter() {
                assert_eq!(descriptor, &format!("square x={index}"));
                assert_eq!(*resolution, CellResolution::Simulated);
            }
            seen.clear();
        }

        // A warm sweep reports the same cells as memory hits.
        let warm = engine.run_with_progress(&jobs(&xs, &executions), Some(&sink));
        assert_eq!(warm.stats.memory_hits, 24);
        let seen = sink.seen.lock().unwrap();
        assert_eq!(seen.len(), 24);
        assert!(seen.iter().all(|u| u.3 == CellResolution::MemoryHit));
    }

    #[test]
    fn unobserved_sweeps_report_zero_observer_time() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..8).collect();
        let run = Executor::new().with_jobs(2).run(&jobs(&xs, &executions));
        assert_eq!(run.stats.observer_s, 0.0);
        assert!(!run.stats.summary().contains("observers"));
    }

    #[test]
    fn retries_heal_chaos_panics_and_outputs_match_a_clean_run() {
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..64).collect();
        let clean = Executor::new().with_jobs(1).run(&jobs(&xs, &executions));

        let plan = ChaosPlan {
            seed: 11,
            panic_permille: 300,
            ..ChaosPlan::default()
        };
        // With 30% injected panics and 4 retries, no cell can fail every
        // attempt under this seed; all outputs must match the clean run.
        let guard = GuardConfig {
            retries: 4,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let chaotic_executions = AtomicUsize::new(0);
        let run = Executor::new()
            .with_jobs(4)
            .with_guard(guard)
            .with_chaos(plan)
            .run(&jobs(&xs, &chaotic_executions));
        assert_eq!(
            run.outputs, clean.outputs,
            "chaos may cost retries, never answers"
        );
        assert!(run.stats.retries > 0, "the seed must actually inject");
        assert_eq!(run.stats.panicked, 0);
        assert!(run.stats.summary().contains("retries"));
    }

    /// A job that sleeps long enough to blow any millisecond deadline.
    struct Sluggish {
        x: u64,
    }

    impl GridJob for Sluggish {
        type Output = u64;
        fn descriptor(&self) -> String {
            format!("sluggish x={}", self.x)
        }
        fn execute(&self) -> u64 {
            if self.x == 3 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            self.x
        }
    }

    #[test]
    fn a_cell_past_its_deadline_times_out_and_is_never_cached() {
        let cells: Vec<Sluggish> = (0..8).map(|x| Sluggish { x }).collect();
        let guard = GuardConfig {
            cell_timeout_s: Some(0.01),
            retries: 1,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let engine = Executor::new().with_jobs(4).with_guard(guard);
        let run = engine.run(&cells);
        for (i, slot) in run.outputs.iter().enumerate() {
            if i == 3 {
                assert!(matches!(
                    slot.as_ref().unwrap_err(),
                    CellFailure::Timeout { attempts: 2, .. }
                ));
            } else {
                assert_eq!(*slot.as_ref().unwrap(), i as u64);
            }
        }
        assert_eq!(run.stats.timeouts, 2, "both attempts hit the deadline");
        assert_eq!(run.stats.panicked, 1, "the timed-out cell failed its slot");
        assert!(run.stats.summary().contains("2 timeouts"));

        // The timed-out descriptor was never cached: a rerun retries it.
        let warm = engine.run(&cells);
        assert_eq!(warm.stats.memory_hits, 7);
        assert_eq!(warm.stats.timeouts, 2);
    }

    #[test]
    fn end_of_run_eviction_is_deterministic_across_worker_counts() {
        let base = std::env::temp_dir().join(format!("olab-grid-evict-{}", std::process::id()));
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..32).collect();
        let mut listings: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
        for workers in [1, 4] {
            let dir = base.join(format!("w{workers}"));
            let _ = std::fs::remove_dir_all(&dir);
            let engine = Executor::new()
                .with_jobs(workers)
                .with_disk_cache(&dir)
                .unwrap()
                .with_cache_cap(400);
            let run = engine.run(&jobs(&xs, &executions));
            assert!(run.stats.evicted > 0, "a 400-byte cap must evict");
            assert!(run.stats.summary().contains("evicted"));
            let mut listing: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().ends_with(".cell"))
                .map(|e| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            listing.sort();
            listings.push(listing);
        }
        assert!(!listings[0].is_empty(), "the cap keeps some entries");
        assert_eq!(
            listings[0], listings[1],
            "serial and parallel sweeps must leave byte-identical directories"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn injected_enospc_degrades_to_memory_only_and_finishes_the_sweep() {
        let dir = std::env::temp_dir().join(format!("olab-grid-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let executions = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..16).collect();
        let plan = ChaosPlan {
            seed: 5,
            enospc_permille: 1000,
            ..ChaosPlan::default()
        };
        let engine = Executor::new()
            .with_jobs(4)
            .with_disk_cache(&dir)
            .unwrap()
            .with_chaos(plan);
        let run = engine.run(&jobs(&xs, &executions));
        let expect: Vec<Result<u64, CellFailure>> = xs.iter().map(|x| Ok(x * x)).collect();
        assert_eq!(
            run.outputs, expect,
            "a full disk costs persistence, not answers"
        );
        assert!(run.stats.degraded);
        assert!(run
            .stats
            .summary()
            .contains("cache degraded to memory-only"));
        let health = engine.cache().health();
        assert!(health.degraded);
        assert!(health
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("ENOSPC"));
        // Memory tier still serves everything.
        let warm = engine.run(&jobs(&xs, &executions));
        assert_eq!(warm.stats.memory_hits, 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Forwards nothing but counts guard/health hook invocations.
    #[derive(Default)]
    struct HookCounter {
        retries: AtomicUsize,
        timeouts: AtomicUsize,
        evictions: AtomicUsize,
        degradations: AtomicUsize,
    }

    impl ProgressSink for HookCounter {
        fn on_cell(&self, _p: &CellProgress<'_>) {}
        fn on_retry(&self, _i: usize, _d: &str, _a: u32) {
            self.retries.fetch_add(1, Ordering::SeqCst);
        }
        fn on_timeout(&self, _i: usize, _d: &str, _s: f64, _a: u32) {
            self.timeouts.fetch_add(1, Ordering::SeqCst);
        }
        fn on_evict(&self, _e: usize, _b: u64, _m: u64) {
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
        fn on_degraded(&self, _r: &str) {
            self.degradations.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn guard_lifecycle_hooks_fire_for_timeouts_and_retries() {
        let cells: Vec<Sluggish> = (0..8).map(|x| Sluggish { x }).collect();
        let guard = GuardConfig {
            cell_timeout_s: Some(0.01),
            retries: 1,
            backoff_base_s: 0.0,
            ..GuardConfig::default()
        };
        let sink = HookCounter::default();
        let run = Executor::new()
            .with_jobs(2)
            .with_guard(guard)
            .run_with_progress(&cells, Some(&sink));
        assert_eq!(run.stats.panicked, 1);
        assert_eq!(sink.retries.load(Ordering::SeqCst), 1, "one retry started");
        assert_eq!(sink.timeouts.load(Ordering::SeqCst), 1, "one final timeout");
        assert_eq!(sink.evictions.load(Ordering::SeqCst), 0);
        assert_eq!(sink.degradations.load(Ordering::SeqCst), 0);
    }
}
