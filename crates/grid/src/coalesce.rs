//! In-flight request coalescing ("single-flight") for serving front-ends.
//!
//! When several concurrent requests name the same cell — same
//! content-address key — only the first should execute it; the rest wait
//! on that execution and share its result. The [`ResultCache`]
//! (`crate::cache`) already deduplicates *completed* work across time;
//! this map deduplicates *in-flight* work across concurrent requests, the
//! classic thundering-herd guard in front of an expensive compute.
//!
//! ## Protocol
//!
//! [`CoalesceMap::join`] with a cell key returns either a [`Leader`] (the
//! key had no flight: the caller must compute and then
//! [`Leader::complete`] with the result) or a [`Waiter`] (a flight
//! exists: block on [`Waiter::wait`] with a per-waiter deadline). Every
//! waiter carries its **own** deadline — a serving deployment propagates
//! each request's `timeout_ms` here, so one slow client never extends
//! another's wait.
//!
//! ## Panic and abandonment safety
//!
//! If the leader unwinds without completing (a worker panic, an early
//! return), its `Drop` marks the flight [`WaitOutcome::Abandoned`] and
//! removes it from the map, so waiters wake with a typed outcome instead
//! of blocking until their deadline, and the next request for the key
//! becomes a fresh leader. A flight is removed from the map in both exits
//! (complete and abandon); waiters hold their own `Arc` to the flight, so
//! a late waiter can still read a published result.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The state of one in-flight computation.
#[derive(Debug)]
enum FlightState<R> {
    /// The leader is still computing.
    Pending,
    /// The leader published a result.
    Done(R),
    /// The leader unwound without completing.
    Abandoned,
}

/// One in-flight computation: its state plus the condvar waiters park on.
#[derive(Debug)]
struct Flight<R> {
    state: Mutex<FlightState<R>>,
    cv: Condvar,
}

impl<R: Clone> Flight<R> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, state: FlightState<R>) {
        *self.state.lock().expect("flight state poisoned") = state;
        self.cv.notify_all();
    }
}

/// How a [`Waiter::wait`] resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome<R> {
    /// The leader published this result.
    Done(R),
    /// The leader unwound without completing; retry with a fresh
    /// [`CoalesceMap::join`] (the caller will now become leader).
    Abandoned,
    /// This waiter's own deadline expired first. The flight may still
    /// complete — and land in the result cache — after this.
    TimedOut,
}

/// What [`CoalesceMap::join`] hands the caller.
#[derive(Debug)]
pub enum Join<'a, R: Clone> {
    /// No flight existed for the key: compute, then [`Leader::complete`].
    Leader(Leader<'a, R>),
    /// A flight exists: wait on it.
    Waiter(Waiter<R>),
}

/// The single computing party for a key. Dropping a leader without
/// calling [`Leader::complete`] abandons the flight (waking all waiters
/// with [`WaitOutcome::Abandoned`]) — unwind-safe by construction.
#[derive(Debug)]
pub struct Leader<'a, R: Clone> {
    map: &'a CoalesceMap<R>,
    key: u64,
    flight: Arc<Flight<R>>,
    completed: bool,
}

impl<R: Clone> Leader<'_, R> {
    /// Publishes `result` to every waiter and retires the flight.
    pub fn complete(mut self, result: R) {
        self.completed = true;
        self.map.remove(self.key);
        self.flight.publish(FlightState::Done(result));
    }
}

impl<R: Clone> Drop for Leader<'_, R> {
    fn drop(&mut self) {
        if !self.completed {
            self.map.remove(self.key);
            self.flight.publish(FlightState::Abandoned);
        }
    }
}

/// A party waiting on another request's in-flight computation.
#[derive(Debug)]
pub struct Waiter<R> {
    flight: Arc<Flight<R>>,
}

impl<R: Clone> Waiter<R> {
    /// Blocks until the flight resolves or `timeout` elapses, whichever
    /// comes first. The timeout is this waiter's alone.
    pub fn wait(&self, timeout: Duration) -> WaitOutcome<R> {
        let deadline = Instant::now() + timeout;
        let mut state = self.flight.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Done(r) => return WaitOutcome::Done(r.clone()),
                FlightState::Abandoned => return WaitOutcome::Abandoned,
                FlightState::Pending => {}
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return WaitOutcome::TimedOut;
            };
            let (next, timed_out) = self
                .flight
                .cv
                .wait_timeout(state, remaining)
                .expect("flight state poisoned");
            state = next;
            if timed_out.timed_out() {
                // Re-check the state once: a publish can race the wakeup.
                match &*state {
                    FlightState::Done(r) => return WaitOutcome::Done(r.clone()),
                    FlightState::Abandoned => return WaitOutcome::Abandoned,
                    FlightState::Pending => return WaitOutcome::TimedOut,
                }
            }
        }
    }
}

/// The in-flight computation map: one [`Flight`] per active key.
#[derive(Debug, Default)]
pub struct CoalesceMap<R> {
    flights: Mutex<HashMap<u64, Arc<Flight<R>>>>,
}

impl<R: Clone> CoalesceMap<R> {
    /// An empty map.
    pub fn new() -> Self {
        CoalesceMap {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: the first caller becomes the
    /// [`Leader`], everyone else a [`Waiter`] on that same flight.
    pub fn join(&self, key: u64) -> Join<'_, R> {
        let mut flights = self.flights.lock().expect("coalesce map poisoned");
        if let Some(flight) = flights.get(&key) {
            return Join::Waiter(Waiter {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        Join::Leader(Leader {
            map: self,
            key,
            flight,
            completed: false,
        })
    }

    /// Keys with an active flight right now.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("coalesce map poisoned").len()
    }

    fn remove(&self, key: u64) {
        self.flights
            .lock()
            .expect("coalesce map poisoned")
            .remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_join_leads_subsequent_joins_wait() {
        let map: CoalesceMap<u64> = CoalesceMap::new();
        let leader = match map.join(7) {
            Join::Leader(l) => l,
            Join::Waiter(_) => panic!("first join must lead"),
        };
        assert_eq!(map.in_flight(), 1);
        let waiter = match map.join(7) {
            Join::Waiter(w) => w,
            Join::Leader(_) => panic!("second join must wait"),
        };
        // A different key gets its own leader (dropped right away, which
        // abandons and retires that flight).
        assert!(matches!(map.join(8), Join::Leader(_)));
        leader.complete(49);
        assert_eq!(
            waiter.wait(Duration::from_secs(1)),
            WaitOutcome::Done(49),
            "the published result reaches a waiter even after the flight retired"
        );
        assert_eq!(map.in_flight(), 0, "both flights retired");
    }

    #[test]
    fn a_storm_of_duplicate_joins_executes_exactly_once() {
        let map: CoalesceMap<u64> = CoalesceMap::new();
        let executions = AtomicUsize::new(0);
        let coalesced = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match map.join(42) {
                    Join::Leader(leader) => {
                        // Linger so the storm really overlaps the flight.
                        std::thread::sleep(Duration::from_millis(30));
                        executions.fetch_add(1, Ordering::SeqCst);
                        leader.complete(4242);
                    }
                    Join::Waiter(waiter) => {
                        coalesced.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(waiter.wait(Duration::from_secs(5)), WaitOutcome::Done(4242));
                    }
                });
            }
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution");
        assert_eq!(coalesced.load(Ordering::SeqCst), 7, "seven coalesced");
        assert_eq!(map.in_flight(), 0, "flight retired");
    }

    #[test]
    fn each_waiter_times_out_on_its_own_deadline() {
        let map: CoalesceMap<u64> = CoalesceMap::new();
        let leader = match map.join(1) {
            Join::Leader(l) => l,
            Join::Waiter(_) => unreachable!(),
        };
        let impatient = match map.join(1) {
            Join::Waiter(w) => w,
            Join::Leader(_) => unreachable!(),
        };
        let patient = match map.join(1) {
            Join::Waiter(w) => w,
            Join::Leader(_) => unreachable!(),
        };
        let start = Instant::now();
        assert_eq!(
            impatient.wait(Duration::from_millis(10)),
            WaitOutcome::TimedOut
        );
        assert!(start.elapsed() < Duration::from_secs(2), "bounded wait");
        // The flight is unaffected by one waiter's expiry: a later
        // completion still reaches the patient waiter.
        leader.complete(11);
        assert_eq!(patient.wait(Duration::from_secs(1)), WaitOutcome::Done(11));
        // And the timed-out party can still read the published result by
        // re-waiting on its own flight handle.
        assert_eq!(
            impatient.wait(Duration::ZERO),
            WaitOutcome::Done(11),
            "discarded-but-published: the result exists even for the expired waiter"
        );
    }

    #[test]
    fn a_dropped_leader_abandons_the_flight_and_frees_the_key() {
        let map: CoalesceMap<u64> = CoalesceMap::new();
        let waiter = {
            let _leader = match map.join(9) {
                Join::Leader(l) => l,
                Join::Waiter(_) => unreachable!(),
            };
            match map.join(9) {
                Join::Waiter(w) => w,
                Join::Leader(_) => unreachable!(),
            }
            // `_leader` drops here without completing — a panic unwind in
            // miniature.
        };
        assert_eq!(waiter.wait(Duration::from_secs(1)), WaitOutcome::Abandoned);
        assert_eq!(map.in_flight(), 0);
        // The key is free: the next join leads and can complete normally.
        match map.join(9) {
            Join::Leader(leader) => leader.complete(81),
            Join::Waiter(_) => panic!("an abandoned key must accept a new leader"),
        };
    }

    #[test]
    fn panicking_leader_thread_wakes_waiters_as_abandoned() {
        let map: CoalesceMap<u64> = CoalesceMap::new();
        std::thread::scope(|s| {
            let leader = match map.join(3) {
                Join::Leader(l) => l,
                Join::Waiter(_) => unreachable!(),
            };
            let waiter = match map.join(3) {
                Join::Waiter(w) => w,
                Join::Leader(_) => unreachable!(),
            };
            let h = s.spawn(move || {
                let _hold = leader;
                panic!("chaos: leader dies mid-flight");
            });
            assert_eq!(waiter.wait(Duration::from_secs(5)), WaitOutcome::Abandoned);
            assert!(h.join().is_err(), "the leader thread did panic");
        });
        assert_eq!(map.in_flight(), 0);
    }
}
