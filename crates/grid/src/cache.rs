//! Content-addressed result cache: an in-memory tier plus an optional
//! on-disk tier.
//!
//! Entries are addressed by the FNV-1a digest of a *descriptor* — a
//! canonical string spelling out every input that can change the result
//! (for experiment cells: SKU, topology size, model, strategy, batch,
//! precision, datapath, caps, overlap policy, and the calibration-constant
//! version). The cache stores the descriptor alongside the value and
//! verifies it on every lookup, so a digest collision degrades to a miss,
//! never to a wrong answer.
//!
//! The disk tier is one file per entry under a user-chosen directory,
//! written with the hand-rolled byte codec in this module (the workspace
//! takes no serialization dependency). Files are written to a temp name
//! and renamed into place, so concurrent writers and readers — including
//! several sweep processes sharing one `--cache` directory — only ever see
//! whole entries.

use crate::hash::fnv1a_64;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic prefix of every cache file (`OLABGRD` + format version).
/// Version 2 appends a trailing FNV-1a checksum over the whole entry.
const MAGIC: &[u8; 8] = b"OLABGRD2";

/// A little-endian byte writer for cache payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A checked little-endian reader over a cache payload.
///
/// Every getter returns `None` on underrun or malformed data instead of
/// panicking: a truncated or foreign file must read as "absent", not crash
/// a sweep.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A value the cache can hold: cloneable across threads and round-trippable
/// through the byte codec for the disk tier.
pub trait CacheValue: Clone + Send {
    /// Serializes `self` into the writer.
    fn encode(&self, w: &mut Writer);
    /// Deserializes a value; `None` on malformed input.
    fn decode(r: &mut Reader<'_>) -> Option<Self>
    where
        Self: Sized;
}

/// Which tier (if any) served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-process map.
    Memory,
    /// Served from (and promoted out of) the on-disk tier.
    Disk,
}

/// Lifetime hit/miss/store counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served by the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by the disk tier.
    pub disk_hits: u64,
    /// Lookups served by neither tier.
    pub misses: u64,
    /// Values inserted (one per computed cell).
    pub stores: u64,
    /// Disk entries that failed integrity verification and were renamed to
    /// `*.corrupt` (each also counts as a miss and is recomputed).
    pub quarantined: u64,
}

impl CacheCounters {
    /// All hits, both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// The two-tier content-addressed cache.
#[derive(Debug)]
pub struct ResultCache<V> {
    memory: Mutex<HashMap<u64, (String, V)>>,
    disk_dir: Option<PathBuf>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl<V: CacheValue> ResultCache<V> {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` (created if absent) in addition to memory.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure when the directory can
    /// neither be found nor created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut cache = Self::in_memory();
        cache.disk_dir = Some(dir);
        Ok(cache)
    }

    /// The key for a descriptor: its FNV-1a 64 digest.
    pub fn key_of(descriptor: &str) -> u64 {
        fnv1a_64(descriptor.as_bytes())
    }

    /// Looks `descriptor` up, memory tier first. A disk hit is promoted
    /// into memory. Returns the value and the tier that served it.
    pub fn lookup(&self, descriptor: &str) -> Option<(V, CacheTier)> {
        let key = Self::key_of(descriptor);
        {
            let memory = self.memory.lock().expect("cache map poisoned");
            if let Some((stored, value)) = memory.get(&key) {
                if stored == descriptor {
                    self.memory_hits.fetch_add(1, Ordering::Relaxed);
                    return Some((value.clone(), CacheTier::Memory));
                }
            }
        }
        if let Some(value) = self.disk_lookup(key, descriptor) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.memory
                .lock()
                .expect("cache map poisoned")
                .insert(key, (descriptor.to_string(), value.clone()));
            return Some((value, CacheTier::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a computed value under `descriptor` in every configured tier.
    /// Disk write failures are swallowed: a read-only cache directory costs
    /// persistence, not the sweep.
    pub fn insert(&self, descriptor: &str, value: V) {
        let key = Self::key_of(descriptor);
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.disk_dir {
            let _ = write_entry(dir, key, descriptor, &value);
        }
        self.memory
            .lock()
            .expect("cache map poisoned")
            .insert(key, (descriptor.to_string(), value));
    }

    /// Entries currently resident in the memory tier.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("cache map poisoned").len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The disk directory, when a disk tier is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// A snapshot of the hit/miss/store counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    fn disk_lookup(&self, key: u64, descriptor: &str) -> Option<V> {
        let dir = self.disk_dir.as_ref()?;
        let path = entry_path(dir, key);
        let bytes = fs::read(&path).ok()?;
        match parse_entry::<V>(&bytes, key, descriptor) {
            EntryOutcome::Value(v) => Some(v),
            // Intact entry for some *other* cell (digest collision, renamed
            // file): a plain miss, the file stays.
            EntryOutcome::Foreign => None,
            EntryOutcome::Corrupt => {
                // Bit rot, truncation, or a non-cache file squatting on the
                // name: move it aside so the recompute can land a fresh
                // entry, and keep the evidence for post-mortems.
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                let _ = fs::rename(&path, quarantine_path(dir, key));
                None
            }
        }
    }
}

/// What a disk entry turned out to hold.
enum EntryOutcome<V> {
    /// Integrity-verified value for the requested descriptor.
    Value(V),
    /// An intact entry belonging to a different descriptor or key.
    Foreign,
    /// Checksum, framing, or codec failure: the bytes cannot be trusted.
    Corrupt,
}

/// Verifies and decodes one on-disk entry. The trailing FNV-1a checksum
/// covers everything before it, so any bit flip or truncation — in the
/// header, the descriptor, or the payload — fails verification before a
/// single field is interpreted.
fn parse_entry<V: CacheValue>(bytes: &[u8], key: u64, descriptor: &str) -> EntryOutcome<V> {
    // Smallest well-formed entry: magic + key + empty descriptor + checksum.
    if bytes.len() < MAGIC.len() + 8 + 4 + 8 {
        return EntryOutcome::Corrupt;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a_64(body) != stored {
        return EntryOutcome::Corrupt;
    }
    let mut r = Reader::new(body);
    match r.take(MAGIC.len()) {
        Some(m) if m == MAGIC => {}
        _ => return EntryOutcome::Corrupt,
    }
    match r.get_u64() {
        Some(k) if k == key => {}
        Some(_) => return EntryOutcome::Foreign,
        None => return EntryOutcome::Corrupt,
    }
    match r.get_str() {
        Some(d) if d == descriptor => {}
        Some(_) => return EntryOutcome::Foreign,
        None => return EntryOutcome::Corrupt,
    }
    match V::decode(&mut r) {
        Some(v) => EntryOutcome::Value(v),
        None => EntryOutcome::Corrupt,
    }
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell"))
}

fn quarantine_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell.corrupt"))
}

fn write_entry<V: CacheValue>(dir: &Path, key: u64, descriptor: &str, value: &V) -> io::Result<()> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.put_u64(key);
    w.put_str(descriptor);
    value.encode(&mut w);
    let digest = fnv1a_64(&w.buf);
    w.put_u64(digest);
    // Unique temp name per writer so concurrent processes cannot interleave
    // partial writes; rename is atomic on POSIX.
    let tmp = dir.join(format!("{key:016x}.{}.tmp", std::process::id()));
    fs::write(&tmp, w.into_bytes())?;
    fs::rename(&tmp, entry_path(dir, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    impl CacheValue for (u64, f64) {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(self.0);
            w.put_f64(self.1);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            Some((r.get_u64()?, r.get_f64()?))
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("olab-grid-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn codec_round_trips_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(1234);
        w.put_u64(u64::MAX);
        w.put_f64(-0.125);
        w.put_str("sweep cell");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(1234));
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert_eq!(r.get_f64(), Some(-0.125));
        assert_eq!(r.get_str().as_deref(), Some("sweep cell"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_payload_reads_as_none() {
        let mut w = Writer::new();
        w.put_str("only half of a string survi");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert_eq!(r.get_str(), None);
    }

    #[test]
    fn memory_tier_hits_and_counts() {
        let cache: ResultCache<(u64, f64)> = ResultCache::in_memory();
        assert!(cache.lookup("cell a").is_none());
        cache.insert("cell a", (1, 2.0));
        assert_eq!(cache.lookup("cell a"), Some(((1, 2.0), CacheTier::Memory)));
        let c = cache.counters();
        assert_eq!((c.memory_hits, c.misses, c.stores), (1, 1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = temp_dir("disk");
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("persisted", (42, 0.5));
        }
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(
            cache.lookup("persisted"),
            Some(((42, 0.5), CacheTier::Disk))
        );
        // Promoted: the second lookup is a memory hit.
        assert_eq!(
            cache.lookup("persisted"),
            Some(((42, 0.5), CacheTier::Memory))
        );
        let c = cache.counters();
        assert_eq!((c.disk_hits, c.memory_hits), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_foreign_files_are_quarantined_not_served() {
        let dir = temp_dir("corrupt");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.insert("victim", (9, 9.0));
        let key = ResultCache::<(u64, f64)>::key_of("victim");
        let path = entry_path(&dir, key);
        fs::write(&path, b"not a cache file at all").unwrap();

        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.lookup("victim").is_none());
        assert_eq!(fresh.counters().quarantined, 1);
        assert!(!path.exists(), "squatter moved aside");
        assert!(quarantine_path(&dir, key).exists(), "evidence kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_single_bit_flip_quarantines_the_entry_and_a_recompute_heals_it() {
        let dir = temp_dir("bitflip");
        let key = ResultCache::<(u64, f64)>::key_of("flipped");
        let path = entry_path(&dir, key);
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("flipped", (123, 0.25));
        }
        // Flip one bit in the value payload (past magic+key+descriptor).
        let mut bytes = fs::read(&path).unwrap();
        let payload_at = bytes.len() - 12;
        bytes[payload_at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(
            cache.lookup("flipped").is_none(),
            "a flipped bit must never decode into a wrong answer"
        );
        assert_eq!(cache.counters().quarantined, 1);
        assert!(quarantine_path(&dir, key).exists());
        assert!(!path.exists());

        // The recompute path: insert rewrites the entry, lookups hit again.
        cache.insert("flipped", (123, 0.25));
        assert!(path.exists(), "healed entry re-lands on the canonical name");
        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(
            fresh.lookup("flipped"),
            Some(((123, 0.25), CacheTier::Disk))
        );
        assert_eq!(fresh.counters().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_quarantined_at_any_cut_point() {
        let dir = temp_dir("truncate");
        let key = ResultCache::<(u64, f64)>::key_of("cut");
        let path = entry_path(&dir, key);
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("cut", (7, -1.5));
        }
        let full = fs::read(&path).unwrap();
        for cut in [1, MAGIC.len(), full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            assert!(cache.lookup("cut").is_none(), "cut at {cut} must miss");
            assert_eq!(cache.counters().quarantined, 1, "cut at {cut}");
            let _ = fs::remove_file(quarantine_path(&dir, key));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn descriptor_is_verified_not_just_the_digest() {
        // Simulate a digest collision by planting an entry whose file name
        // matches but whose descriptor differs: must miss.
        let dir = temp_dir("collide");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.insert("original descriptor", (3, 1.5));
        let key = ResultCache::<(u64, f64)>::key_of("other descriptor");
        let orig = ResultCache::<(u64, f64)>::key_of("original descriptor");
        fs::rename(entry_path(&dir, orig), entry_path(&dir, key)).unwrap();

        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.lookup("other descriptor").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
