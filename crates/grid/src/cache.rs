//! Content-addressed result cache: an in-memory tier plus an optional
//! on-disk tier.
//!
//! Entries are addressed by the FNV-1a digest of a *descriptor* — a
//! canonical string spelling out every input that can change the result
//! (for experiment cells: SKU, topology size, model, strategy, batch,
//! precision, datapath, caps, overlap policy, and the calibration-constant
//! version). The cache stores the descriptor alongside the value and
//! verifies it on every lookup, so a digest collision degrades to a miss,
//! never to a wrong answer.
//!
//! The disk tier is one file per entry under a user-chosen directory,
//! written with the hand-rolled byte codec in this module (the workspace
//! takes no serialization dependency). Files are written to a temp name
//! unique per (process, instance, write) and renamed into place, so
//! concurrent writers and readers — including several sweep processes
//! sharing one `--cache` directory — only ever see whole entries.
//!
//! ## Service-grade hardening
//!
//! * **Advisory leases + stale-`.tmp` reaping** — every instance drops a
//!   `lease.{pid}.{instance}` marker in the directory (removed on drop).
//!   Opening a cache reaps `.tmp` files whose writing process is provably
//!   dead (no lease and no `/proc/{pid}` on Linux), so a writer that died
//!   between write and rename cannot leak files forever.
//! * **Size-capped deterministic eviction** — with a byte cap configured,
//!   [`ResultCache::enforce_disk_cap`] evicts `*.cell` files cold-first
//!   (entries this process has not touched), each group ordered by
//!   ascending recompute cost ([`CacheCost`]) then ascending key: a total
//!   order independent of scheduling, so serial and parallel sweeps leave
//!   byte-identical directories.
//! * **Cost/size-aware admission** — jobs declare how expensive their
//!   value is to recompute ([`ResultCache::insert_with_cost`]); under a
//!   byte cap, cheap fast-path cells are evicted before expensive
//!   event-loop results, and a single entry larger than the whole cap is
//!   denied disk admission outright
//!   ([`CacheCounters::admission_rejected`]) instead of flushing the tier.
//! * **Graceful degradation** — a disk write failing with `ENOSPC` or
//!   `EACCES` latches the cache into memory-only operation instead of
//!   failing every subsequent cell; [`ResultCache::health`] reports it.
//! * **Quarantine evidence preservation** — repeated quarantines of one
//!   key land on `.corrupt`, `.corrupt.1`, `.corrupt.2`, … so earlier
//!   evidence is never clobbered.

use crate::hash::fnv1a_64;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

#[cfg(any(test, feature = "chaos"))]
use crate::chaos::ChaosPlan;

/// Distinguishes instances within one process so their tmp names and
/// leases never collide.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Magic prefix of every cache file (`OLABGRD` + format version).
/// Version 2 appends a trailing FNV-1a checksum over the whole entry.
const MAGIC: &[u8; 8] = b"OLABGRD2";

/// A little-endian byte writer for cache payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A checked little-endian reader over a cache payload.
///
/// Every getter returns `None` on underrun or malformed data instead of
/// panicking: a truncated or foreign file must read as "absent", not crash
/// a sweep.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A value the cache can hold: cloneable across threads and round-trippable
/// through the byte codec for the disk tier.
pub trait CacheValue: Clone + Send {
    /// Serializes `self` into the writer.
    fn encode(&self, w: &mut Writer);
    /// Deserializes a value; `None` on malformed input.
    fn decode(r: &mut Reader<'_>) -> Option<Self>
    where
        Self: Sized;
}

/// Which tier (if any) served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-process map.
    Memory,
    /// Served from (and promoted out of) the on-disk tier.
    Disk,
}

/// How expensive a cached value would be to *recompute* — the currency of
/// the disk tier's admission/eviction policy. The variant order is the
/// eviction order: under a byte cap, `Cheap` entries (analytic fast-path
/// cells, microseconds to regenerate) are dropped before `Standard` ones,
/// and `Expensive` entries (full event-loop results) go last — a burst of
/// lean cells can no longer wash costly results out of a capped cache.
///
/// Costs are tracked in-process for keys inserted through
/// [`ResultCache::insert_with_cost`]; entries from earlier processes have
/// unknown cost and rank as `Standard`. Because a job's cost is a pure
/// function of the cell, the ranking — like the rest of the eviction
/// policy — is identical between serial and parallel sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheCost {
    /// Trivially recomputable (e.g. analytic fast-path cells).
    Cheap,
    /// Unclassified — the default for jobs without a hint, and for disk
    /// entries inherited from other processes.
    #[default]
    Standard,
    /// Costly to recompute (e.g. full event-loop simulations).
    Expensive,
}

/// Lifetime hit/miss/store counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served by the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by the disk tier.
    pub disk_hits: u64,
    /// Lookups served by neither tier.
    pub misses: u64,
    /// Values inserted (one per computed cell).
    pub stores: u64,
    /// Disk entries that failed integrity verification and were renamed to
    /// `*.corrupt` (each also counts as a miss and is recomputed).
    pub quarantined: u64,
    /// Disk entries removed by the size-cap eviction policy.
    pub evicted: u64,
    /// Stale `.tmp` files from provably dead writers removed at open.
    pub tmp_reaped: u64,
    /// Values denied disk-tier admission because one encoded entry alone
    /// would exceed the configured byte cap (they stay in memory).
    pub admission_rejected: u64,
}

impl CacheCounters {
    /// All hits, both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// A typed report on the disk tier's condition, for telemetry and
/// operator-facing diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheHealth {
    /// A disk tier was configured.
    pub disk_enabled: bool,
    /// The disk tier latched into memory-only degradation (ENOSPC or
    /// EACCES on a write).
    pub degraded: bool,
    /// The error that tripped degradation, when degraded.
    pub degraded_reason: Option<String>,
    /// `*.cell` entries currently on disk.
    pub disk_entries: u64,
    /// Bytes held by `*.cell` entries on disk.
    pub disk_bytes: u64,
    /// The configured eviction cap, when one is set.
    pub max_disk_bytes: Option<u64>,
}

/// The two-tier content-addressed cache.
#[derive(Debug)]
pub struct ResultCache<V> {
    memory: Mutex<HashMap<u64, (String, V)>>,
    /// Recompute-cost classes of keys inserted by this process, feeding
    /// the eviction order of [`ResultCache::enforce_disk_cap`].
    costs: Mutex<HashMap<u64, CacheCost>>,
    disk_dir: Option<PathBuf>,
    max_disk_bytes: Option<u64>,
    lease_path: Option<PathBuf>,
    instance: u64,
    tmp_seq: AtomicU64,
    degraded: AtomicBool,
    degraded_reason: Mutex<Option<String>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    tmp_reaped: AtomicU64,
    admission_rejected: AtomicU64,
    #[cfg(any(test, feature = "chaos"))]
    chaos: Option<ChaosPlan>,
}

impl<V: CacheValue> ResultCache<V> {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            costs: Mutex::new(HashMap::new()),
            disk_dir: None,
            max_disk_bytes: None,
            lease_path: None,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            tmp_seq: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(None),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            tmp_reaped: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            #[cfg(any(test, feature = "chaos"))]
            chaos: None,
        }
    }

    /// A cache backed by `dir` (created if absent) in addition to memory.
    ///
    /// Opening reaps stale `.tmp` files left by provably dead writers
    /// (counted in [`CacheCounters::tmp_reaped`]) and drops an advisory
    /// lease file, removed when this instance is dropped, so future
    /// openers can tell live writers from dead ones.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure when the directory can
    /// neither be found nor created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut cache = Self::in_memory();
        let reaped = reap_stale_tmp(&dir);
        cache.tmp_reaped.store(reaped, Ordering::Relaxed);
        crate::metrics::grid_metrics().cache_tmp_reaped.add(reaped);
        let lease = dir.join(format!("lease.{}.{}", std::process::id(), cache.instance));
        // The lease is advisory: failing to write it (read-only directory)
        // costs reap precision for others, never the sweep.
        let _ = fs::write(&lease, b"olab-grid writer lease\n");
        cache.lease_path = Some(lease);
        cache.disk_dir = Some(dir);
        Ok(cache)
    }

    /// Like [`ResultCache::with_disk`] with a byte cap on the disk tier,
    /// enforced immediately (pre-existing directories shrink to fit) and
    /// again whenever [`ResultCache::enforce_disk_cap`] runs.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure, as [`ResultCache::with_disk`].
    pub fn with_disk_capped(dir: impl Into<PathBuf>, max_bytes: u64) -> io::Result<Self> {
        let mut cache = Self::with_disk(dir)?;
        cache.max_disk_bytes = Some(max_bytes);
        cache.enforce_disk_cap();
        Ok(cache)
    }

    /// Sets or clears the disk-tier byte cap, enforcing it right away when
    /// set.
    pub fn set_disk_cap(&mut self, max_bytes: Option<u64>) {
        self.max_disk_bytes = max_bytes;
        if max_bytes.is_some() {
            self.enforce_disk_cap();
        }
    }

    /// Arms deterministic fault injection on this instance's disk IO (see
    /// [`crate::chaos`]). Test/feature-gated; production builds have no
    /// chaos branches.
    #[cfg(any(test, feature = "chaos"))]
    pub fn set_chaos(&mut self, plan: Option<ChaosPlan>) {
        self.chaos = plan;
    }

    /// The key for a descriptor: its FNV-1a 64 digest.
    pub fn key_of(descriptor: &str) -> u64 {
        fnv1a_64(descriptor.as_bytes())
    }

    /// Looks `descriptor` up, memory tier first. A disk hit is promoted
    /// into memory. Returns the value and the tier that served it.
    pub fn lookup(&self, descriptor: &str) -> Option<(V, CacheTier)> {
        let m = crate::metrics::grid_metrics();
        let start = olab_metrics::now_if_enabled();
        let key = Self::key_of(descriptor);
        {
            let memory = self.memory.lock().expect("cache map poisoned");
            if let Some((stored, value)) = memory.get(&key) {
                if stored == descriptor {
                    self.memory_hits.fetch_add(1, Ordering::Relaxed);
                    m.cache_memory_hits.inc();
                    m.cache_lookup_memory_hit_ns.observe_since(start);
                    return Some((value.clone(), CacheTier::Memory));
                }
            }
        }
        if let Some(value) = self.disk_lookup(key, descriptor) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.memory
                .lock()
                .expect("cache map poisoned")
                .insert(key, (descriptor.to_string(), value.clone()));
            m.cache_disk_hits.inc();
            m.cache_lookup_disk_hit_ns.observe_since(start);
            return Some((value, CacheTier::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        m.cache_misses.inc();
        m.cache_lookup_miss_ns.observe_since(start);
        None
    }

    /// Stores a computed value under `descriptor` in every configured tier.
    /// Disk write failures are swallowed — a read-only cache directory
    /// costs persistence, not the sweep — except that `ENOSPC`/`EACCES`
    /// additionally latch the disk tier into memory-only degradation (see
    /// [`ResultCache::health`]) so a full disk fails one write, not one
    /// write per cell.
    pub fn insert(&self, descriptor: &str, value: V) {
        self.insert_with_cost(descriptor, value, CacheCost::Standard);
    }

    /// Like [`ResultCache::insert`], additionally recording the value's
    /// recompute-cost class for the eviction policy (see [`CacheCost`]).
    /// The [`crate::GridJob::cost_hint`] of the computing job is what the
    /// sweep engine passes here.
    pub fn insert_with_cost(&self, descriptor: &str, value: V, cost: CacheCost) {
        let m = crate::metrics::grid_metrics();
        let start = olab_metrics::now_if_enabled();
        let key = Self::key_of(descriptor);
        self.stores.fetch_add(1, Ordering::Relaxed);
        m.cache_stores.inc();
        if let Some(dir) = &self.disk_dir {
            self.costs
                .lock()
                .expect("cost map poisoned")
                .insert(key, cost);
            if !self.degraded.load(Ordering::SeqCst) {
                if let Err(err) = self.write_entry(dir, key, descriptor, &value) {
                    self.note_write_failure(&err);
                }
            }
        }
        self.memory
            .lock()
            .expect("cache map poisoned")
            .insert(key, (descriptor.to_string(), value));
        m.cache_insert_ns.observe_since(start);
    }

    /// Entries currently resident in the memory tier.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("cache map poisoned").len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The disk directory, when a disk tier is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// A snapshot of the hit/miss/store counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            tmp_reaped: self.tmp_reaped.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
        }
    }

    /// True once the disk tier latched into memory-only degradation.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// A typed report on the disk tier: degradation state, occupancy, and
    /// the configured cap.
    pub fn health(&self) -> CacheHealth {
        let (disk_entries, disk_bytes) = match &self.disk_dir {
            Some(dir) => {
                let cells = scan_cells(dir);
                (cells.len() as u64, cells.iter().map(|&(_, b)| b).sum())
            }
            None => (0, 0),
        };
        CacheHealth {
            disk_enabled: self.disk_dir.is_some(),
            degraded: self.is_degraded(),
            degraded_reason: self
                .degraded_reason
                .lock()
                .expect("degradation reason poisoned")
                .clone(),
            disk_entries,
            disk_bytes,
            max_disk_bytes: self.max_disk_bytes,
        }
    }

    /// Enforces the disk-tier byte cap, if one is set: while `*.cell`
    /// bytes exceed the cap, evicts entries this process has *not* touched
    /// (absent from the memory tier) before touched ones, each partition
    /// ordered by ascending recompute cost ([`CacheCost`]) and then
    /// ascending key — so cheap fast-path cells go before expensive
    /// event-loop results of the same temperature. The candidate set, the
    /// cost ranks (pure functions of the cells), and the order are all
    /// independent of worker scheduling, so serial and parallel sweeps
    /// evict identically — the determinism contract extends to the cache
    /// directory itself. Returns entries evicted by this call (also
    /// accumulated into [`CacheCounters::evicted`]).
    pub fn enforce_disk_cap(&self) -> u64 {
        let (Some(dir), Some(cap)) = (&self.disk_dir, self.max_disk_bytes) else {
            return 0;
        };
        if self.degraded.load(Ordering::SeqCst) {
            return 0;
        }
        let cells = scan_cells(dir);
        let mut total: u64 = cells.iter().map(|&(_, b)| b).sum();
        if total <= cap {
            return 0;
        }
        let hot: HashSet<u64> = self
            .memory
            .lock()
            .expect("cache map poisoned")
            .keys()
            .copied()
            .collect();
        let (mut cold, mut warm): (Vec<_>, Vec<_>) =
            cells.into_iter().partition(|(k, _)| !hot.contains(k));
        // Within each temperature, cheapest-to-recompute first; keys this
        // process never inserted rank `Standard`. `scan_cells` returns
        // ascending keys and the sort is stable, so ties stay key-ordered.
        {
            let costs = self.costs.lock().expect("cost map poisoned");
            let rank = |k: u64| costs.get(&k).copied().unwrap_or_default();
            cold.sort_by_key(|&(k, _)| rank(k));
            warm.sort_by_key(|&(k, _)| rank(k));
        }
        let mut evicted = 0u64;
        for (key, bytes) in cold.into_iter().chain(warm) {
            if total <= cap {
                break;
            }
            if fs::remove_file(entry_path(dir, key)).is_ok() {
                total = total.saturating_sub(bytes);
                evicted += 1;
            }
        }
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        crate::metrics::grid_metrics().cache_evicted.add(evicted);
        evicted
    }

    fn disk_lookup(&self, key: u64, descriptor: &str) -> Option<V> {
        let dir = self.disk_dir.as_ref()?;
        if self.degraded.load(Ordering::SeqCst) {
            return None;
        }
        let path = entry_path(dir, key);
        let bytes = fs::read(&path).ok()?;
        match parse_entry::<V>(&bytes, key, descriptor) {
            EntryOutcome::Value(v) => Some(v),
            // Intact entry for some *other* cell (digest collision, renamed
            // file): a plain miss, the file stays.
            EntryOutcome::Foreign => None,
            EntryOutcome::Corrupt => {
                // Bit rot, truncation, or a non-cache file squatting on the
                // name: move it aside so the recompute can land a fresh
                // entry, and keep the evidence for post-mortems. The
                // destination is suffixed past any earlier quarantine of
                // the same key, so repeated corruption never clobbers
                // evidence.
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                crate::metrics::grid_metrics().cache_quarantined.inc();
                let _ = fs::rename(&path, quarantine_dest(dir, key));
                None
            }
        }
    }

    /// Writes one disk entry atomically: full bytes to a tmp name unique
    /// per (process, instance, write), then rename. Chaos fault points
    /// `cache.enospc`, `cache.torn_write`, and `cache.rename_fail` live
    /// here (test/feature builds only).
    fn write_entry(&self, dir: &Path, key: u64, descriptor: &str, value: &V) -> io::Result<()> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(MAGIC);
        w.put_u64(key);
        w.put_str(descriptor);
        value.encode(&mut w);
        let digest = fnv1a_64(&w.buf);
        w.put_u64(digest);
        let bytes = w.into_bytes();

        // Size-aware admission: an entry that alone exceeds the byte cap
        // could never survive enforcement — admitting it would just evict
        // the rest of the tier on its way out. Deny it the disk tier up
        // front; it still serves from memory. A pure function of the entry
        // and the cap, so serial and parallel sweeps decide identically.
        if let Some(cap) = self.max_disk_bytes {
            if bytes.len() as u64 > cap {
                self.admission_rejected.fetch_add(1, Ordering::Relaxed);
                crate::metrics::grid_metrics()
                    .cache_admission_rejected
                    .inc();
                return Ok(());
            }
        }

        #[cfg(any(test, feature = "chaos"))]
        if self.chaos.as_ref().is_some_and(|p| p.enospc(key)) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected ENOSPC",
            ));
        }

        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            "{key:016x}.{}.{}.{seq}.tmp",
            std::process::id(),
            self.instance
        ));

        #[cfg(any(test, feature = "chaos"))]
        let written: &[u8] = if self.chaos.as_ref().is_some_and(|p| p.torn_write(key)) {
            // A torn write: only half the entry reaches the disk, as if
            // power failed mid-write on a filesystem without data
            // journaling. The trailing checksum must catch it on read.
            &bytes[..bytes.len() / 2]
        } else {
            &bytes
        };
        #[cfg(not(any(test, feature = "chaos")))]
        let written: &[u8] = &bytes;

        fs::write(&tmp, written)?;

        #[cfg(any(test, feature = "chaos"))]
        if self.chaos.as_ref().is_some_and(|p| p.rename_fail(key)) {
            // The writer "dies" before the rename: the tmp file leaks, and
            // a later open must reap it.
            return Ok(());
        }

        fs::rename(&tmp, entry_path(dir, key))
    }

    /// Classifies a disk write failure: `ENOSPC`/`EACCES` latch the
    /// memory-only degradation flag (first failure records the reason),
    /// anything else stays a swallowed one-off.
    fn note_write_failure(&self, err: &io::Error) {
        let fatal = matches!(
            err.kind(),
            io::ErrorKind::StorageFull | io::ErrorKind::PermissionDenied
        ) || matches!(err.raw_os_error(), Some(28) | Some(13));
        if fatal && !self.degraded.swap(true, Ordering::SeqCst) {
            *self
                .degraded_reason
                .lock()
                .expect("degradation reason poisoned") = Some(err.to_string());
        }
    }
}

impl<V> Drop for ResultCache<V> {
    fn drop(&mut self) {
        if let Some(lease) = &self.lease_path {
            let _ = fs::remove_file(lease);
        }
    }
}

/// What a disk entry turned out to hold.
enum EntryOutcome<V> {
    /// Integrity-verified value for the requested descriptor.
    Value(V),
    /// An intact entry belonging to a different descriptor or key.
    Foreign,
    /// Checksum, framing, or codec failure: the bytes cannot be trusted.
    Corrupt,
}

/// Verifies and decodes one on-disk entry. The trailing FNV-1a checksum
/// covers everything before it, so any bit flip or truncation — in the
/// header, the descriptor, or the payload — fails verification before a
/// single field is interpreted.
fn parse_entry<V: CacheValue>(bytes: &[u8], key: u64, descriptor: &str) -> EntryOutcome<V> {
    // Smallest well-formed entry: magic + key + empty descriptor + checksum.
    if bytes.len() < MAGIC.len() + 8 + 4 + 8 {
        return EntryOutcome::Corrupt;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a_64(body) != stored {
        return EntryOutcome::Corrupt;
    }
    let mut r = Reader::new(body);
    match r.take(MAGIC.len()) {
        Some(m) if m == MAGIC => {}
        _ => return EntryOutcome::Corrupt,
    }
    match r.get_u64() {
        Some(k) if k == key => {}
        Some(_) => return EntryOutcome::Foreign,
        None => return EntryOutcome::Corrupt,
    }
    match r.get_str() {
        Some(d) if d == descriptor => {}
        Some(_) => return EntryOutcome::Foreign,
        None => return EntryOutcome::Corrupt,
    }
    match V::decode(&mut r) {
        Some(v) => EntryOutcome::Value(v),
        None => EntryOutcome::Corrupt,
    }
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell"))
}

fn quarantine_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell.corrupt"))
}

/// The first unused quarantine name for `key`: `.corrupt`, then
/// `.corrupt.1`, `.corrupt.2`, … so earlier evidence survives repeated
/// quarantines of the same entry.
fn quarantine_dest(dir: &Path, key: u64) -> PathBuf {
    let base = quarantine_path(dir, key);
    if !base.exists() {
        return base;
    }
    for n in 1u32.. {
        let candidate = dir.join(format!("{key:016x}.cell.corrupt.{n}"));
        if !candidate.exists() {
            return candidate;
        }
    }
    base
}

/// Every `*.cell` entry in `dir` as `(key, bytes)`, ascending by key —
/// the stable scan order the eviction policy's determinism rests on.
fn scan_cells(dir: &Path) -> Vec<(u64, u64)> {
    let mut cells = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = parse_cell_key(name) {
                if let Ok(meta) = entry.metadata() {
                    cells.push((key, meta.len()));
                }
            }
        }
    }
    cells.sort_unstable();
    cells
}

/// The key of a canonical `{key:016x}.cell` file name; `None` for
/// everything else (tmp files, quarantine evidence, leases, strangers).
fn parse_cell_key(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".cell")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The writer pid embedded in a `{key}.{pid}[...].tmp` file name (both the
/// current `{key}.{pid}.{instance}.{seq}.tmp` form and the legacy
/// `{key}.{pid}.tmp` form).
fn parse_tmp_pid(name: &str) -> Option<u32> {
    let stem = name.strip_suffix(".tmp")?;
    let mut parts = stem.split('.');
    let _key = parts.next()?;
    parts.next()?.parse().ok()
}

/// The pid embedded in a `lease.{pid}.{instance}` file name.
fn parse_lease_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("lease.")?;
    rest.split('.').next()?.parse().ok()
}

/// Whether `pid` is currently alive; `None` when the platform cannot say
/// (reaping then stays conservative and keeps the file).
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> Option<bool> {
    Some(Path::new("/proc").join(pid.to_string()).exists())
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> Option<bool> {
    None
}

/// Removes `.tmp` files (and leases) left by provably dead writers: a
/// writer that died between `fs::write` and `fs::rename` would otherwise
/// leak its tmp file forever. A tmp survives when its pid is this process,
/// holds a live lease, or is alive (or of unknown liveness) — reaping
/// never races a writer that might still rename. Returns tmps removed.
fn reap_stale_tmp(dir: &Path) -> u64 {
    let me = std::process::id();
    let mut leases: Vec<(PathBuf, u32)> = Vec::new();
    let mut tmps: Vec<(PathBuf, u32)> = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(pid) = parse_lease_pid(name) {
            leases.push((entry.path(), pid));
        } else if let Some(pid) = parse_tmp_pid(name) {
            tmps.push((entry.path(), pid));
        }
    }
    let mut leased: HashSet<u32> = HashSet::new();
    for (path, pid) in leases {
        if pid != me && pid_alive(pid) == Some(false) {
            let _ = fs::remove_file(path);
        } else {
            leased.insert(pid);
        }
    }
    let mut reaped = 0;
    for (path, pid) in tmps {
        if pid == me || leased.contains(&pid) {
            continue;
        }
        if pid_alive(pid) == Some(false) && fs::remove_file(&path).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

#[cfg(test)]
mod tests {
    use super::*;

    impl CacheValue for (u64, f64) {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(self.0);
            w.put_f64(self.1);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            Some((r.get_u64()?, r.get_f64()?))
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("olab-grid-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn codec_round_trips_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(1234);
        w.put_u64(u64::MAX);
        w.put_f64(-0.125);
        w.put_str("sweep cell");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(1234));
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert_eq!(r.get_f64(), Some(-0.125));
        assert_eq!(r.get_str().as_deref(), Some("sweep cell"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_payload_reads_as_none() {
        let mut w = Writer::new();
        w.put_str("only half of a string survi");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert_eq!(r.get_str(), None);
    }

    #[test]
    fn memory_tier_hits_and_counts() {
        let cache: ResultCache<(u64, f64)> = ResultCache::in_memory();
        assert!(cache.lookup("cell a").is_none());
        cache.insert("cell a", (1, 2.0));
        assert_eq!(cache.lookup("cell a"), Some(((1, 2.0), CacheTier::Memory)));
        let c = cache.counters();
        assert_eq!((c.memory_hits, c.misses, c.stores), (1, 1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = temp_dir("disk");
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("persisted", (42, 0.5));
        }
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(
            cache.lookup("persisted"),
            Some(((42, 0.5), CacheTier::Disk))
        );
        // Promoted: the second lookup is a memory hit.
        assert_eq!(
            cache.lookup("persisted"),
            Some(((42, 0.5), CacheTier::Memory))
        );
        let c = cache.counters();
        assert_eq!((c.disk_hits, c.memory_hits), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_foreign_files_are_quarantined_not_served() {
        let dir = temp_dir("corrupt");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.insert("victim", (9, 9.0));
        let key = ResultCache::<(u64, f64)>::key_of("victim");
        let path = entry_path(&dir, key);
        fs::write(&path, b"not a cache file at all").unwrap();

        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.lookup("victim").is_none());
        assert_eq!(fresh.counters().quarantined, 1);
        assert!(!path.exists(), "squatter moved aside");
        assert!(quarantine_path(&dir, key).exists(), "evidence kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_single_bit_flip_quarantines_the_entry_and_a_recompute_heals_it() {
        let dir = temp_dir("bitflip");
        let key = ResultCache::<(u64, f64)>::key_of("flipped");
        let path = entry_path(&dir, key);
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("flipped", (123, 0.25));
        }
        // Flip one bit in the value payload (past magic+key+descriptor).
        let mut bytes = fs::read(&path).unwrap();
        let payload_at = bytes.len() - 12;
        bytes[payload_at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(
            cache.lookup("flipped").is_none(),
            "a flipped bit must never decode into a wrong answer"
        );
        assert_eq!(cache.counters().quarantined, 1);
        assert!(quarantine_path(&dir, key).exists());
        assert!(!path.exists());

        // The recompute path: insert rewrites the entry, lookups hit again.
        cache.insert("flipped", (123, 0.25));
        assert!(path.exists(), "healed entry re-lands on the canonical name");
        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(
            fresh.lookup("flipped"),
            Some(((123, 0.25), CacheTier::Disk))
        );
        assert_eq!(fresh.counters().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_quarantined_at_any_cut_point() {
        let dir = temp_dir("truncate");
        let key = ResultCache::<(u64, f64)>::key_of("cut");
        let path = entry_path(&dir, key);
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("cut", (7, -1.5));
        }
        let full = fs::read(&path).unwrap();
        for cut in [1, MAGIC.len(), full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            assert!(cache.lookup("cut").is_none(), "cut at {cut} must miss");
            assert_eq!(cache.counters().quarantined, 1, "cut at {cut}");
            let _ = fs::remove_file(quarantine_path(&dir, key));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// A pid guaranteed dead right now (Linux: absent from `/proc`).
    #[cfg(target_os = "linux")]
    fn dead_pid() -> u32 {
        (400_000..500_000)
            .find(|p| !Path::new("/proc").join(p.to_string()).exists())
            .expect("some pid in 400k..500k is unused")
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_tmp_files_from_dead_writers_are_reaped_at_open() {
        let dir = temp_dir("reap");
        fs::create_dir_all(&dir).unwrap();
        let dead = dead_pid();
        // A dead writer's leak (legacy name), a dead writer's leak (current
        // name), plus its stale lease.
        let dead_legacy = dir.join(format!("{:016x}.{dead}.tmp", 1u64));
        let dead_current = dir.join(format!("{:016x}.{dead}.0.3.tmp", 2u64));
        let dead_lease = dir.join(format!("lease.{dead}.0"));
        // A live writer's in-flight tmp (pid 1 always lives) and our own.
        let live_tmp = dir.join(format!("{:016x}.1.tmp", 3u64));
        let own_tmp = dir.join(format!("{:016x}.{}.9.9.tmp", 4u64, std::process::id()));
        for p in [
            &dead_legacy,
            &dead_current,
            &dead_lease,
            &live_tmp,
            &own_tmp,
        ] {
            fs::write(p, b"junk").unwrap();
        }

        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(cache.counters().tmp_reaped, 2, "both dead leaks reaped");
        assert!(!dead_legacy.exists() && !dead_current.exists());
        assert!(!dead_lease.exists(), "stale lease removed with its owner");
        assert!(live_tmp.exists(), "a live writer's tmp must survive");
        assert!(own_tmp.exists(), "our own in-flight tmp must survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leases_are_dropped_with_the_instance_and_protect_tmp_files() {
        let dir = temp_dir("lease");
        let lease = {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.insert("held", (1, 1.0));
            let lease = fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .find(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("lease."))
                })
                .expect("an open cache holds a lease");
            assert!(lease.exists());
            lease
        };
        assert!(!lease.exists(), "drop removes the advisory lease");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_quarantines_keep_every_piece_of_evidence() {
        let dir = temp_dir("requarantine");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        let key = ResultCache::<(u64, f64)>::key_of("repeat offender");
        let path = entry_path(&dir, key);
        for round in 0..3u8 {
            cache.insert("repeat offender", (round as u64, 0.0));
            fs::write(&path, [b"rotten round ", &[b'0' + round][..]].concat()).unwrap();
            let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            assert!(fresh.lookup("repeat offender").is_none());
        }
        assert!(quarantine_path(&dir, key).exists());
        assert!(dir.join(format!("{key:016x}.cell.corrupt.1")).exists());
        assert!(dir.join(format!("{key:016x}.cell.corrupt.2")).exists());
        // Each quarantine kept its own round's bytes: no clobbering.
        let first = fs::read(quarantine_path(&dir, key)).unwrap();
        let third = fs::read(dir.join(format!("{key:016x}.cell.corrupt.2"))).unwrap();
        assert_ne!(first, third);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_byte_cap_evicts_cold_entries_first_in_key_order() {
        let dir = temp_dir("evict");
        {
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            for i in 0..10u64 {
                cache.insert(&format!("cold entry {i}"), (i, 0.0));
            }
        }
        // Reopen with a cap that keeps roughly half: every entry is cold
        // (nothing touched yet), so eviction is ascending-key order.
        let entry_bytes = scan_cells(&dir)[0].1;
        let cap = entry_bytes * 5;
        let mut cache: ResultCache<(u64, f64)> = ResultCache::with_disk_capped(&dir, cap).unwrap();
        assert_eq!(cache.counters().evicted, 5);
        let kept = scan_cells(&dir);
        assert_eq!(kept.len(), 5);
        let mut all_keys: Vec<u64> = (0..10u64)
            .map(|i| ResultCache::<(u64, f64)>::key_of(&format!("cold entry {i}")))
            .collect();
        all_keys.sort_unstable();
        let expect: Vec<u64> = all_keys[5..].to_vec();
        assert_eq!(
            kept.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            expect,
            "the five smallest keys go first"
        );
        // Touched (hot) entries outlive cold ones at the next enforcement.
        let survivor = (0..10u64)
            .map(|i| format!("cold entry {i}"))
            .find(|d| ResultCache::<(u64, f64)>::key_of(d) == expect[0])
            .unwrap();
        assert!(cache.lookup(&survivor).is_some(), "promoted to hot");
        cache.set_disk_cap(Some(entry_bytes));
        let kept_now = scan_cells(&dir);
        assert_eq!(kept_now.len(), 1);
        assert_eq!(kept_now[0].0, expect[0], "the hot entry survived");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_entry_larger_than_the_cap_is_denied_disk_admission() {
        let dir = temp_dir("admission");
        // One (u64, f64) entry encodes to well over 30 bytes with magic,
        // key, descriptor, and checksum; a 30-byte cap admits nothing.
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk_capped(&dir, 30).unwrap();
        cache.insert("too big to ever fit", (1, 1.0));
        assert!(scan_cells(&dir).is_empty(), "never reached the disk");
        assert_eq!(cache.counters().admission_rejected, 1);
        assert_eq!(cache.counters().evicted, 0, "rejected, not evicted");
        assert!(!cache.is_degraded(), "admission denial is not a failure");
        // The value still serves from memory.
        assert_eq!(
            cache.lookup("too big to ever fit"),
            Some(((1, 1.0), CacheTier::Memory))
        );
        // A roomy cap admits the same entry normally.
        let roomy: ResultCache<(u64, f64)> = ResultCache::with_disk_capped(&dir, 10_000).unwrap();
        roomy.insert("too big to ever fit", (1, 1.0));
        assert_eq!(scan_cells(&dir).len(), 1);
        assert_eq!(roomy.counters().admission_rejected, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_drops_cheap_entries_before_expensive_ones() {
        let dir = temp_dir("cost-evict");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        let descriptors: Vec<String> = (0..6u64).map(|i| format!("costed cell {i}")).collect();
        let mut keys: Vec<u64> = descriptors
            .iter()
            .map(|d| ResultCache::<(u64, f64)>::key_of(d))
            .collect();
        keys.sort_unstable();
        // The two smallest keys get Expensive, the rest Cheap: pure
        // key-order eviction would drop the expensive pair first, the
        // cost-aware order must drop all four cheap entries instead.
        let expensive: HashSet<u64> = keys[..2].iter().copied().collect();
        for (i, d) in descriptors.iter().enumerate() {
            let cost = if expensive.contains(&ResultCache::<(u64, f64)>::key_of(d)) {
                CacheCost::Expensive
            } else {
                CacheCost::Cheap
            };
            cache.insert_with_cost(d, (i as u64, 0.0), cost);
        }
        let entry_bytes = scan_cells(&dir)[0].1;
        let mut cache = cache;
        cache.set_disk_cap(Some(entry_bytes * 2));
        assert_eq!(cache.counters().evicted, 4, "all four cheap cells go");
        let kept: Vec<u64> = scan_cells(&dir).iter().map(|&(k, _)| k).collect();
        assert_eq!(kept, keys[..2].to_vec(), "the expensive pair survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_aware_eviction_is_independent_of_insert_order() {
        // Same entries, same costs, opposite insertion orders: both
        // directories must keep exactly the same survivors — the eviction
        // point sees identical state regardless of scheduling.
        let descriptors: Vec<String> = (0..8u64).map(|i| format!("order cell {i}")).collect();
        let cost_of = |i: usize| match i % 3 {
            0 => CacheCost::Cheap,
            1 => CacheCost::Standard,
            _ => CacheCost::Expensive,
        };
        let mut survivors: Vec<Vec<u64>> = Vec::new();
        for (tag, reversed) in [("fwd", false), ("rev", true)] {
            let dir = temp_dir(&format!("cost-order-{tag}"));
            let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            let mut order: Vec<usize> = (0..descriptors.len()).collect();
            if reversed {
                order.reverse();
            }
            for i in order {
                cache.insert_with_cost(&descriptors[i], (i as u64, 0.0), cost_of(i));
            }
            let entry_bytes = scan_cells(&dir)[0].1;
            let mut cache = cache;
            cache.set_disk_cap(Some(entry_bytes * 3));
            survivors.push(scan_cells(&dir).iter().map(|&(k, _)| k).collect());
            let _ = fs::remove_dir_all(&dir);
        }
        assert_eq!(survivors[0], survivors[1]);
        assert_eq!(survivors[0].len(), 3);
    }

    #[test]
    fn injected_enospc_latches_memory_only_degradation() {
        let dir = temp_dir("enospc");
        let mut cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.set_chaos(Some(crate::chaos::ChaosPlan {
            seed: 1,
            enospc_permille: 1000,
            ..Default::default()
        }));
        assert!(!cache.is_degraded());
        cache.insert("doomed write", (1, 1.0));
        assert!(cache.is_degraded(), "one ENOSPC latches degradation");
        // Memory still serves; disk holds nothing.
        assert_eq!(
            cache.lookup("doomed write"),
            Some(((1, 1.0), CacheTier::Memory))
        );
        assert!(scan_cells(&dir).is_empty());
        let health = cache.health();
        assert!(health.disk_enabled && health.degraded);
        assert!(health.degraded_reason.unwrap().contains("ENOSPC"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_injected_torn_write_is_caught_never_served() {
        let dir = temp_dir("torn");
        {
            let mut cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
            cache.set_chaos(Some(crate::chaos::ChaosPlan {
                seed: 1,
                torn_write_permille: 1000,
                ..Default::default()
            }));
            cache.insert("torn", (7, 7.0));
        }
        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.lookup("torn").is_none(), "half an entry is no entry");
        assert_eq!(fresh.counters().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_injected_rename_failure_leaks_a_tmp_the_entry_never_lands() {
        let dir = temp_dir("renamefail");
        let mut cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.set_chaos(Some(crate::chaos::ChaosPlan {
            seed: 1,
            rename_fail_permille: 1000,
            ..Default::default()
        }));
        cache.insert("never lands", (2, 2.0));
        let key = ResultCache::<(u64, f64)>::key_of("never lands");
        assert!(!entry_path(&dir, key).exists());
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 1, "the tmp leaked, exactly as a dying writer would");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_reports_occupancy_and_cap() {
        let dir = temp_dir("health");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk_capped(&dir, 10_000).unwrap();
        cache.insert("one", (1, 1.0));
        cache.insert("two", (2, 2.0));
        let health = cache.health();
        assert!(health.disk_enabled && !health.degraded);
        assert_eq!(health.disk_entries, 2);
        assert!(health.disk_bytes > 0);
        assert_eq!(health.max_disk_bytes, Some(10_000));
        let memory_only: ResultCache<(u64, f64)> = ResultCache::in_memory();
        assert_eq!(memory_only.health(), CacheHealth::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn descriptor_is_verified_not_just_the_digest() {
        // Simulate a digest collision by planting an entry whose file name
        // matches but whose descriptor differs: must miss.
        let dir = temp_dir("collide");
        let cache: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        cache.insert("original descriptor", (3, 1.5));
        let key = ResultCache::<(u64, f64)>::key_of("other descriptor");
        let orig = ResultCache::<(u64, f64)>::key_of("original descriptor");
        fs::rename(entry_path(&dir, orig), entry_path(&dir, key)).unwrap();

        let fresh: ResultCache<(u64, f64)> = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.lookup("other descriptor").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
