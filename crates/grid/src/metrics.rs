//! Engine self-telemetry families owned by this crate: the work-stealing
//! pool, the two-tier result cache, the execution guard, and per-cell
//! execution cost.
//!
//! All families register together on first touch so an exposition always
//! contains the full set (zeros included) once the grid has been used — or
//! once [`touch`] was called — regardless of which code paths ran. The
//! cache-counter families mirror [`crate::cache::CacheCounters`] across
//! every cache instance in the process; the per-instance counters remain
//! the source for [`crate::SweepStats`] deltas.

use olab_metrics::{counter, gauge, histogram, Counter, Determinism, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct GridMetrics {
    // Pool.
    /// Items submitted to the pool across all maps; schedule-independent.
    pub pool_tasks: &'static Counter,
    pub pool_steals: &'static Counter,
    pub pool_workers: &'static Gauge,
    pub pool_queue_depth: &'static Histogram,
    pub pool_worker_busy_ns: &'static Histogram,
    pub pool_worker_idle_ns: &'static Histogram,
    // Guard.
    pub guard_attempts: &'static Counter,
    pub guard_retries: &'static Counter,
    pub guard_timeouts: &'static Counter,
    // Cache.
    pub cache_memory_hits: &'static Counter,
    pub cache_disk_hits: &'static Counter,
    pub cache_misses: &'static Counter,
    pub cache_stores: &'static Counter,
    pub cache_quarantined: &'static Counter,
    pub cache_evicted: &'static Counter,
    pub cache_tmp_reaped: &'static Counter,
    pub cache_admission_rejected: &'static Counter,
    pub cache_lookup_memory_hit_ns: &'static Histogram,
    pub cache_lookup_disk_hit_ns: &'static Histogram,
    pub cache_lookup_miss_ns: &'static Histogram,
    pub cache_insert_ns: &'static Histogram,
    // Executor.
    pub cell_exec_ns: &'static Histogram,
}

pub(crate) fn grid_metrics() -> &'static GridMetrics {
    static M: OnceLock<GridMetrics> = OnceLock::new();
    M.get_or_init(|| GridMetrics {
        pool_tasks: counter(
            "olab_pool_tasks_total",
            Determinism::CrossRun,
            "Items submitted to the work-stealing pool.",
        ),
        pool_steals: counter(
            "olab_pool_steals_total",
            Determinism::Wall,
            "Items taken from another worker's deque.",
        ),
        pool_workers: gauge(
            "olab_pool_workers",
            Determinism::Wall,
            "Worker threads of the most recent pool map.",
        ),
        pool_queue_depth: histogram(
            "olab_pool_queue_depth",
            "Deque depth sampled at each pop and steal.",
        ),
        pool_worker_busy_ns: histogram(
            "olab_pool_worker_busy_ns",
            "Per-worker time spent executing items, one sample per worker per map.",
        ),
        pool_worker_idle_ns: histogram(
            "olab_pool_worker_idle_ns",
            "Per-worker time spent waiting or stealing, one sample per worker per map.",
        ),
        guard_attempts: counter(
            "olab_guard_attempts_total",
            Determinism::Wall,
            "Guarded cell attempts, including the first try of every cell.",
        ),
        guard_retries: counter(
            "olab_guard_retries_total",
            Determinism::Wall,
            "Guarded cell attempts after a failed first try.",
        ),
        guard_timeouts: counter(
            "olab_guard_timeouts_total",
            Determinism::Wall,
            "Attempts that exceeded the per-cell deadline (including healed ones).",
        ),
        cache_memory_hits: counter(
            "olab_cache_memory_hits_total",
            Determinism::CrossRun,
            "Lookups served by the in-memory tier.",
        ),
        cache_disk_hits: counter(
            "olab_cache_disk_hits_total",
            Determinism::CrossRun,
            "Lookups served by the disk tier.",
        ),
        cache_misses: counter(
            "olab_cache_misses_total",
            Determinism::CrossRun,
            "Lookups served by neither tier.",
        ),
        cache_stores: counter(
            "olab_cache_stores_total",
            Determinism::CrossRun,
            "Values inserted (one per computed cell).",
        ),
        cache_quarantined: counter(
            "olab_cache_quarantined_total",
            Determinism::CrossRun,
            "Disk entries that failed integrity verification and were quarantined.",
        ),
        cache_evicted: counter(
            "olab_cache_evicted_total",
            Determinism::CrossRun,
            "Disk entries removed by the size-cap eviction policy.",
        ),
        cache_tmp_reaped: counter(
            "olab_cache_tmp_reaped_total",
            Determinism::Wall,
            "Stale tmp files from provably dead writers removed at cache open.",
        ),
        cache_admission_rejected: counter(
            "olab_cache_admission_rejected_total",
            Determinism::CrossRun,
            "Values denied disk-tier admission because one entry would exceed the byte cap.",
        ),
        cache_lookup_memory_hit_ns: histogram(
            "olab_cache_lookup_memory_hit_ns",
            "Lookup latency when served by the memory tier.",
        ),
        cache_lookup_disk_hit_ns: histogram(
            "olab_cache_lookup_disk_hit_ns",
            "Lookup latency when served by the disk tier (including promotion).",
        ),
        cache_lookup_miss_ns: histogram(
            "olab_cache_lookup_miss_ns",
            "Lookup latency when neither tier had the entry.",
        ),
        cache_insert_ns: histogram("olab_cache_insert_ns", "Insert latency across both tiers."),
        cell_exec_ns: histogram(
            "olab_grid_cell_exec_ns",
            "Wall-clock of each computed (non-cached) cell execution.",
        ),
    })
}

/// Forces registration of this crate's metric families so expositions are
/// complete even before (or without) any sweep.
pub fn touch() {
    let _ = grid_metrics();
}
