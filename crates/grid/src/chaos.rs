//! Deterministic seeded fault injection for the sweep engine itself.
//!
//! `olab-faults` chaos-tests the *simulated cluster*; this module
//! chaos-tests the *harness* — the cache IO and the worker pool that every
//! sweep stands on. A [`ChaosPlan`] decides, at a handful of named fault
//! points, whether to inject a failure. Every decision is a pure function
//! of `(seed, fault point, cell key, attempt)`, so a chaotic run is exactly
//! reproducible regardless of worker count, scheduling, or wall clock —
//! which is what lets the `grid_soak` harness assert that a chaotic sweep
//! returns results bit-identical to a clean one.
//!
//! ## Fault-point catalog
//!
//! | point | site | injected failure |
//! |---|---|---|
//! | `cache.torn_write` | disk insert | entry lands with its tail truncated (a torn write the checksum must catch) |
//! | `cache.rename_fail` | disk insert | the tmp file is written but never renamed (a leaked `.tmp`) |
//! | `cache.enospc` | disk insert | the write fails with `StorageFull` (trips memory-only degradation) |
//! | `pool.panic` | executor, before a miss simulates | the cell closure panics |
//! | `pool.slow_cell` | executor, before a miss simulates | the cell sleeps past its deadline |
//! | `serve.slow_client` | daemon, before a response is written | the connection handler sleeps `slow_client_ms` (a client draining its socket slowly) |
//! | `serve.conn_reset` | daemon, before a response is written | the connection is dropped without a response (a mid-request client reset) |
//!
//! Compiled only under `cfg(test)` or the `chaos` cargo feature:
//! production builds carry zero chaos branches.

use crate::hash::fnv1a_64;

/// A seeded, deterministic fault-injection plan. All rates are permille
/// (`0..=1000`); `0` disables a fault point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed folded into every roll.
    pub seed: u64,
    /// Rate of torn (tail-truncated) disk entries per insert.
    pub torn_write_permille: u16,
    /// Rate of writes whose tmp file is never renamed into place.
    pub rename_fail_permille: u16,
    /// Rate of disk writes failing with `StorageFull`.
    pub enospc_permille: u16,
    /// Rate of cell closures panicking before the simulation runs.
    pub panic_permille: u16,
    /// Rate of cells sleeping `slow_cell_ms` before the simulation runs.
    pub slow_cell_permille: u16,
    /// How long an injected slow cell sleeps, milliseconds.
    pub slow_cell_ms: u64,
    /// Rate of served responses stalled by `slow_client_ms` before the
    /// bytes go out (models a client draining its socket slowly).
    pub slow_client_permille: u16,
    /// How long an injected slow client stalls the response, milliseconds.
    pub slow_client_ms: u64,
    /// Rate of connections dropped without a response right before the
    /// write (models a mid-request client reset).
    pub conn_reset_permille: u16,
}

impl ChaosPlan {
    /// A plan with `seed` and every fault disabled; set rates on the
    /// returned value.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// The deterministic roll for a fault point: an FNV-1a digest of
    /// `(seed, point, key, attempt)` reduced to `0..1000`. Independent of
    /// scheduling, worker count, and wall clock.
    fn roll(&self, point: &str, key: u64, attempt: u32) -> u64 {
        let mut bytes = Vec::with_capacity(point.len() + 20);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(point.as_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&attempt.to_le_bytes());
        fnv1a_64(&bytes) % 1000
    }

    fn fires(&self, point: &str, permille: u16, key: u64, attempt: u32) -> bool {
        permille > 0 && self.roll(point, key, attempt) < u64::from(permille.min(1000))
    }

    /// Should this insert of `key` land torn?
    pub fn torn_write(&self, key: u64) -> bool {
        self.fires("cache.torn_write", self.torn_write_permille, key, 0)
    }

    /// Should this insert of `key` leak its tmp file (rename skipped)?
    pub fn rename_fail(&self, key: u64) -> bool {
        self.fires("cache.rename_fail", self.rename_fail_permille, key, 0)
    }

    /// Should this disk write of `key` fail with `StorageFull`?
    pub fn enospc(&self, key: u64) -> bool {
        self.fires("cache.enospc", self.enospc_permille, key, 0)
    }

    /// Should attempt `attempt` of cell `key` panic before simulating?
    pub fn worker_panic(&self, key: u64, attempt: u32) -> bool {
        self.fires("pool.panic", self.panic_permille, key, attempt)
    }

    /// Should attempt `attempt` of cell `key` run slow?
    pub fn slow_cell(&self, key: u64, attempt: u32) -> bool {
        self.fires("pool.slow_cell", self.slow_cell_permille, key, attempt)
    }

    /// Should the response for request `request` (a serving front-end's
    /// own monotone request counter, playing the `key` role) stall for
    /// `slow_client_ms` before its bytes are written?
    pub fn slow_client(&self, request: u64) -> bool {
        self.fires("serve.slow_client", self.slow_client_permille, request, 0)
    }

    /// Should the connection carrying request `request` be dropped without
    /// a response, as if the client reset mid-request?
    pub fn conn_reset(&self, request: u64) -> bool {
        self.fires("serve.conn_reset", self.conn_reset_permille, request, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan {
            seed: 7,
            panic_permille: 500,
            ..ChaosPlan::default()
        };
        let b = ChaosPlan { seed: 8, ..a };
        let fires_a: Vec<bool> = (0..64).map(|k| a.worker_panic(k, 0)).collect();
        let fires_a2: Vec<bool> = (0..64).map(|k| a.worker_panic(k, 0)).collect();
        let fires_b: Vec<bool> = (0..64).map(|k| b.worker_panic(k, 0)).collect();
        assert_eq!(fires_a, fires_a2, "same seed, same plan");
        assert_ne!(fires_a, fires_b, "a different seed rolls differently");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = ChaosPlan {
            seed: 42,
            torn_write_permille: 250,
            ..ChaosPlan::default()
        };
        let fired = (0..4000).filter(|&k| plan.torn_write(k)).count();
        assert!(
            (800..1200).contains(&fired),
            "~25% of 4000 rolls should fire, got {fired}"
        );
    }

    #[test]
    fn zero_permille_never_fires_and_full_permille_always_fires() {
        let off = ChaosPlan::seeded(1);
        assert!((0..200).all(|k| !off.worker_panic(k, 0)));
        let on = ChaosPlan {
            seed: 1,
            enospc_permille: 1000,
            ..ChaosPlan::default()
        };
        assert!((0..200).all(|k| on.enospc(k)));
    }

    #[test]
    fn attempts_roll_independently() {
        // The retry story depends on it: an attempt that panics must have
        // a real chance of succeeding on retry.
        let plan = ChaosPlan {
            seed: 3,
            panic_permille: 500,
            ..ChaosPlan::default()
        };
        let differs = (0..64).any(|k| plan.worker_panic(k, 0) != plan.worker_panic(k, 1));
        assert!(differs, "attempt must be folded into the roll");
    }

    #[test]
    fn fault_points_roll_independently() {
        let plan = ChaosPlan {
            seed: 9,
            torn_write_permille: 500,
            rename_fail_permille: 500,
            ..ChaosPlan::default()
        };
        let differs = (0..64).any(|k| plan.torn_write(k) != plan.rename_fail(k));
        assert!(differs, "point name must be folded into the roll");
    }

    #[test]
    fn serve_points_are_deterministic_and_independent_of_each_other() {
        let plan = ChaosPlan {
            seed: 11,
            slow_client_permille: 500,
            slow_client_ms: 5,
            conn_reset_permille: 500,
            ..ChaosPlan::default()
        };
        let slow: Vec<bool> = (0..64).map(|r| plan.slow_client(r)).collect();
        let slow2: Vec<bool> = (0..64).map(|r| plan.slow_client(r)).collect();
        assert_eq!(slow, slow2, "same plan, same request ids, same faults");
        let differs = (0..64).any(|r| plan.slow_client(r) != plan.conn_reset(r));
        assert!(differs, "the two serve points roll independently");
        // And independently of the pool/cache points with the same key.
        let cross = (0..64).any(|r| plan.slow_client(r) != plan.slow_cell(r, 0));
        assert!(cross, "serve rolls do not mirror pool rolls");
    }

    #[test]
    fn serve_rates_honor_zero_and_full_permille() {
        let off = ChaosPlan::seeded(2);
        assert!((0..200).all(|r| !off.slow_client(r) && !off.conn_reset(r)));
        let on = ChaosPlan {
            seed: 2,
            slow_client_permille: 1000,
            conn_reset_permille: 1000,
            ..ChaosPlan::default()
        };
        assert!((0..200).all(|r| on.slow_client(r) && on.conn_reset(r)));
    }
}
