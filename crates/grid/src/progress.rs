//! Live sweep progress: a sink interface worker threads report through.
//!
//! The executor invokes an optional [`ProgressSink`] once per resolved
//! cell, from whichever worker thread finished it — so sinks must be
//! `Sync` and use interior mutability. Updates arrive in *completion*
//! order (nondeterministic under parallelism); the `completed` counter is
//! monotone per update but interleaving across workers is wall-clock
//! dependent. Time spent inside sinks is accounted separately in
//! [`SweepStats::observer_s`](crate::SweepStats::observer_s) so sweep
//! telemetry never silently absorbs observability overhead.

/// How one cell of a sweep was resolved, as reported to progress sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellResolution {
    /// Served by the in-memory cache tier.
    MemoryHit,
    /// Served by the disk cache tier.
    DiskHit,
    /// Actually simulated (a cache miss).
    Simulated,
}

impl CellResolution {
    /// A stable lowercase label (`memory-hit`, `disk-hit`, `simulated`)
    /// for progress streams.
    pub fn label(&self) -> &'static str {
        match self {
            CellResolution::MemoryHit => "memory-hit",
            CellResolution::DiskHit => "disk-hit",
            CellResolution::Simulated => "simulated",
        }
    }
}

/// One progress update: the cell that just resolved and where the sweep
/// stands. All references borrow executor state — copy what you keep.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress<'a> {
    /// Cells resolved so far, including this one (monotone, 1-based).
    pub completed: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// Input index of the cell that just resolved.
    pub index: usize,
    /// The cell's canonical descriptor.
    pub descriptor: &'a str,
    /// How the cell was resolved.
    pub resolution: CellResolution,
    /// Wall-clock seconds since the sweep started.
    pub wall_s: f64,
}

/// Receives live per-cell progress updates from the sweep executor.
///
/// Called from worker threads; implementations synchronize internally.
/// Cells whose closure panics are isolated by the pool and reported only
/// in the final [`SweepStats`](crate::SweepStats), not through the sink.
pub trait ProgressSink: Sync {
    /// One cell resolved.
    fn on_cell(&self, progress: &CellProgress<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_labels_are_stable() {
        assert_eq!(CellResolution::MemoryHit.label(), "memory-hit");
        assert_eq!(CellResolution::DiskHit.label(), "disk-hit");
        assert_eq!(CellResolution::Simulated.label(), "simulated");
    }
}
