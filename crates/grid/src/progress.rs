//! Live sweep progress: a sink interface worker threads report through.
//!
//! The executor invokes an optional [`ProgressSink`] once per resolved
//! cell, from whichever worker thread finished it — so sinks must be
//! `Sync` and use interior mutability. Updates arrive in *completion*
//! order (nondeterministic under parallelism); the `completed` counter is
//! monotone per update but interleaving across workers is wall-clock
//! dependent. Time spent inside sinks is accounted separately in
//! [`SweepStats::observer_s`](crate::SweepStats::observer_s) so sweep
//! telemetry never silently absorbs observability overhead.

/// How one cell of a sweep was resolved, as reported to progress sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellResolution {
    /// Served by the in-memory cache tier.
    MemoryHit,
    /// Served by the disk cache tier.
    DiskHit,
    /// Actually simulated (a cache miss).
    Simulated,
}

impl CellResolution {
    /// A stable lowercase label (`memory-hit`, `disk-hit`, `simulated`)
    /// for progress streams.
    pub fn label(&self) -> &'static str {
        match self {
            CellResolution::MemoryHit => "memory-hit",
            CellResolution::DiskHit => "disk-hit",
            CellResolution::Simulated => "simulated",
        }
    }
}

/// One progress update: the cell that just resolved and where the sweep
/// stands. All references borrow executor state — copy what you keep.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress<'a> {
    /// Cells resolved so far, including this one (monotone, 1-based).
    pub completed: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// Input index of the cell that just resolved.
    pub index: usize,
    /// The cell's canonical descriptor.
    pub descriptor: &'a str,
    /// How the cell was resolved.
    pub resolution: CellResolution,
    /// Attempts this cell took to resolve (`1` without guards; more when
    /// retries recovered a transient failure).
    pub attempts: u32,
    /// Wall-clock seconds since the sweep started.
    pub wall_s: f64,
}

/// Receives live per-cell progress updates from the sweep executor.
///
/// Called from worker threads; implementations synchronize internally.
/// Cells whose closure panics are isolated by the pool and reported only
/// in the final [`SweepStats`](crate::SweepStats), not through the sink.
///
/// The guard/health hooks (`on_retry`, `on_timeout`, `on_evict`,
/// `on_degraded`) default to no-ops so existing sinks keep compiling;
/// `on_retry` arrives from worker threads as retries start, the other
/// three from the coordinating thread after cells resolve.
pub trait ProgressSink: Sync {
    /// One cell resolved.
    fn on_cell(&self, progress: &CellProgress<'_>);

    /// A guarded cell is starting retry attempt `attempt` (1-based: the
    /// first retry is attempt 1) after a failed earlier attempt.
    fn on_retry(&self, _index: usize, _descriptor: &str, _attempt: u32) {}

    /// A cell exhausted every attempt against its wall-clock deadline and
    /// failed with [`CellFailure::Timeout`](crate::CellFailure::Timeout).
    fn on_timeout(&self, _index: usize, _descriptor: &str, _deadline_s: f64, _attempts: u32) {}

    /// The size-cap policy evicted `_evicted` disk entries, leaving
    /// `_disk_bytes` on disk against a `_max_bytes` cap.
    fn on_evict(&self, _evicted: usize, _disk_bytes: u64, _max_bytes: u64) {}

    /// The disk tier latched into memory-only degradation.
    fn on_degraded(&self, _reason: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_labels_are_stable() {
        assert_eq!(CellResolution::MemoryHit.label(), "memory-hit");
        assert_eq!(CellResolution::DiskHit.label(), "disk-hit");
        assert_eq!(CellResolution::Simulated.label(), "simulated");
    }
}
