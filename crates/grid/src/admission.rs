//! Bounded admission queue for serving front-ends: accept work up to a
//! fixed depth, shed the rest immediately, drain cleanly on shutdown.
//!
//! The load-shedding half of the serve story: an acceptor thread pushes
//! accepted connections, worker threads pop them, and when the queue is
//! full [`AdmissionQueue::push`] fails *immediately* with the rejected
//! item instead of blocking — the caller turns that into a `429` with a
//! `Retry-After` rather than letting latency grow without bound. Closing
//! the queue ([`AdmissionQueue::close`]) starts the drain protocol:
//! further pushes are rejected as [`RejectReason::Closed`], while pops
//! keep returning queued items until the queue is empty and only then
//! return `None` — already-admitted work is always finished, never
//! dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected, with the item handed back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected<T> {
    /// The item that was not admitted.
    pub item: T,
    /// Why.
    pub reason: RejectReason,
}

/// Why the queue refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue is at capacity: shed load now, retry later.
    Full,
    /// The queue is draining for shutdown: no new work is admitted.
    Closed,
}

#[derive(Debug, Default)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with immediate rejection and drain-on-close.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items at a time (a zero
    /// capacity is clamped to one so the queue can make progress).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item`, or rejects it immediately — never blocks.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Full`] at capacity, [`RejectReason::Closed`] after
    /// [`AdmissionQueue::close`]; the item rides back in the error either
    /// way so the caller can respond to it.
    pub fn push(&self, item: T) -> Result<(), Rejected<T>> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        if state.closed {
            return Err(Rejected {
                item,
                reason: RejectReason::Closed,
            });
        }
        if state.items.len() >= self.capacity {
            return Err(Rejected {
                item,
                reason: RejectReason::Full,
            });
        }
        state.items.push_back(item);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` only once the queue is
    /// closed **and** empty — the drain guarantee: every admitted item is
    /// popped before any worker is released.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("admission queue poisoned");
        }
    }

    /// Starts the drain: rejects future pushes, lets pops run the queue
    /// dry, then releases every blocked popper with `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("admission queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Items queued right now.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .items
            .len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("admission queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn a_full_queue_sheds_immediately_with_the_item_returned() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let rejected = q.push(3).unwrap_err();
        assert_eq!(rejected.item, 3, "the shed item rides back to the caller");
        assert_eq!(rejected.reason, RejectReason::Full);
        assert_eq!(q.depth(), 2);
        // Popping one frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_rejects_new_work_but_drains_admitted_work() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert!(q.is_closed());
        let rejected = q.push(12).unwrap_err();
        assert_eq!(rejected.reason, RejectReason::Closed);
        // The drain guarantee: both admitted items come out before None.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed-and-empty stays terminal");
        q.close(); // idempotent
    }

    #[test]
    fn close_releases_every_blocked_popper() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        let released = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Workers drain whatever arrives, then exit on None.
                    while q.pop().is_some() {}
                    released.fetch_add(1, Ordering::SeqCst);
                });
            }
            q.push(1).unwrap();
            q.push(2).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            q.close();
        });
        assert_eq!(released.load(Ordering::SeqCst), 4, "no stranded workers");
        assert_eq!(q.depth(), 0, "everything admitted was drained");
    }

    #[test]
    fn concurrent_producers_and_consumers_neither_lose_nor_duplicate() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        let consumed = Mutex::new(Vec::new());
        let shed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        consumed.lock().unwrap().push(v);
                    }
                });
                let shed = &shed;
                let q = &q;
                s.spawn(move || {
                    for i in 0..64u32 {
                        let v = t * 1000 + i;
                        // Retry shed items so every value lands exactly once.
                        let mut item = v;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(r) => {
                                    assert_eq!(r.reason, RejectReason::Full);
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    item = r.item;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            // Give producers time to finish before starting the drain.
            while q.depth() > 0 || consumed.lock().unwrap().len() < 256 {
                std::thread::sleep(Duration::from_millis(5));
            }
            q.close();
        });
        let mut got = consumed.into_inner().unwrap();
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..64u32).map(move |i| t * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "every admitted item consumed exactly once");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(5).unwrap();
        assert_eq!(q.push(6).unwrap_err().reason, RejectReason::Full);
        assert_eq!(q.pop(), Some(5));
    }
}
