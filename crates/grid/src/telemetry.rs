//! Per-sweep telemetry: throughput, cache effectiveness, and the
//! wall-clock-vs-cumulative-work ratio that shows what parallelism bought.

use std::fmt;

/// Statistics of one grid execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepStats {
    /// Total cells requested.
    pub cells: usize,
    /// Cells actually simulated (cache misses).
    pub simulated: usize,
    /// Cells served by the in-memory cache tier.
    pub memory_hits: usize,
    /// Cells served by the disk cache tier.
    pub disk_hits: usize,
    /// Cells that ultimately failed — a panic, a missed deadline, or an
    /// exhausted retry budget (isolated by the pool, never cached).
    pub panicked: usize,
    /// Disk cache entries that failed integrity verification during this
    /// sweep: quarantined as `*.corrupt` and recomputed.
    pub quarantined: usize,
    /// Attempts that hit their wall-clock deadline, including ones later
    /// recovered by a retry.
    pub timeouts: usize,
    /// Extra attempts made beyond each cell's first (0 without guards).
    pub retries: usize,
    /// Disk cache entries evicted by the size-cap policy during this
    /// sweep (at open or at end-of-run enforcement).
    pub evicted: usize,
    /// The disk tier latched into memory-only degradation (ENOSPC/EACCES)
    /// at some point up to the end of this sweep.
    pub degraded: bool,
    /// Whether a disk cache tier was attached for this sweep. With it the
    /// two fields below describe the tier as of end-of-run; without it
    /// they are zero.
    pub disk_enabled: bool,
    /// Disk cache entries present after the sweep (post cap enforcement),
    /// from the same [`crate::cache::CacheHealth`] scan that `/readyz`
    /// reads in a serving deployment.
    pub disk_entries: u64,
    /// Bytes occupied by the disk tier after the sweep.
    pub disk_bytes: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep, seconds.
    pub wall_s: f64,
    /// Sum of per-cell simulation times, seconds (what a serial, uncached
    /// sweep would have spent computing).
    pub cumulative_cell_s: f64,
    /// Observability overhead: cumulative wall-clock spent inside progress
    /// sinks across all workers, seconds (0 when no sink is attached).
    pub observer_s: f64,
    /// Simulated cells served by an analytic fast path instead of the full
    /// event loop (0 when the executor has no fast path or it never fired).
    /// Cache keys never depend on the path — the answers are identical —
    /// but artifacts report it so perf trajectories stay auditable.
    pub fast_path: usize,
}

impl SweepStats {
    /// Cells served from either cache tier.
    pub fn cache_hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }

    /// Fraction of cells served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / self.cells as f64
        }
    }

    /// Sweep throughput, cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cells as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Cumulative simulated time over wall-clock time — the effective
    /// speedup delivered by the pool and the cache together.
    pub fn speedup(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cumulative_cell_s / self.wall_s
        } else {
            0.0
        }
    }

    /// One-line summary for report footers, e.g.
    /// `88 cells in 1.24 s (71.0 cells/s, 16 workers): 40 simulated, 48 cached (54.5% hit rate), 9.80 s simulated in 1.24 s wall (7.9x)`.
    pub fn summary(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for SweepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells in {:.2} s ({:.1} cells/s, {} workers): {} simulated, {} cached ({:.1}% hit rate, {} memory / {} disk), {:.2} s simulated in {:.2} s wall ({:.1}x)",
            self.cells,
            self.wall_s,
            self.cells_per_sec(),
            self.workers,
            self.simulated,
            self.cache_hits(),
            100.0 * self.hit_rate(),
            self.memory_hits,
            self.disk_hits,
            self.cumulative_cell_s,
            self.wall_s,
            self.speedup(),
        )?;
        if self.panicked > 0 {
            write!(f, ", {} panicked", self.panicked)?;
        }
        if self.quarantined > 0 {
            write!(f, ", {} quarantined", self.quarantined)?;
        }
        if self.retries > 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        if self.timeouts > 0 {
            write!(f, ", {} timeouts", self.timeouts)?;
        }
        if self.evicted > 0 {
            write!(f, ", {} evicted", self.evicted)?;
        }
        if self.degraded {
            write!(f, ", cache degraded to memory-only")?;
        }
        if self.disk_enabled {
            write!(
                f,
                ", disk tier {} entries / {} B",
                self.disk_entries, self.disk_bytes
            )?;
        }
        if self.observer_s > 0.0 {
            write!(f, ", {:.3} s in observers", self.observer_s)?;
        }
        if self.fast_path > 0 {
            write!(f, ", {} fast-path", self.fast_path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SweepStats {
        SweepStats {
            cells: 10,
            simulated: 4,
            memory_hits: 5,
            disk_hits: 1,
            workers: 8,
            wall_s: 2.0,
            cumulative_cell_s: 12.0,
            ..SweepStats::default()
        }
    }

    #[test]
    fn derived_rates_are_consistent() {
        let s = stats();
        assert_eq!(s.cache_hits(), 6);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.cells_per_sec() - 5.0).abs() < 1e-12);
        assert!((s.speedup() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_wall_clock_divides_safely() {
        let s = SweepStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.cells_per_sec(), 0.0);
        assert_eq!(s.speedup(), 0.0);
    }

    #[test]
    fn summary_mentions_the_load_bearing_numbers() {
        let text = stats().summary();
        for needle in [
            "10 cells",
            "4 simulated",
            "6 cached",
            "60.0% hit rate",
            "8 workers",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in '{text}'");
        }
        assert!(!text.contains("panicked"), "quiet when nothing panicked");
        assert!(!text.contains("observers"), "quiet when unobserved");
        let noisy = SweepStats {
            panicked: 2,
            observer_s: 0.25,
            ..stats()
        };
        assert!(noisy.summary().contains("2 panicked"));
        assert!(noisy.summary().contains("0.250 s in observers"));
        assert!(!noisy.summary().contains("quarantined"), "quiet when clean");
        let rotten = SweepStats {
            quarantined: 1,
            ..stats()
        };
        assert!(rotten.summary().contains("1 quarantined"));
        assert!(!text.contains("fast-path"), "quiet when no fast path ran");
        let fast = SweepStats {
            fast_path: 3,
            ..stats()
        };
        assert!(fast.summary().contains("3 fast-path"));
    }

    #[test]
    fn guard_and_cache_health_clauses_appear_only_when_nonzero() {
        let quiet = stats().summary();
        for absent in ["retries", "timeouts", "evicted", "degraded"] {
            assert!(!quiet.contains(absent), "'{absent}' must be quiet: {quiet}");
        }
        let guarded = SweepStats {
            retries: 5,
            timeouts: 2,
            evicted: 7,
            degraded: true,
            ..stats()
        };
        let text = guarded.summary();
        for needle in [
            "5 retries",
            "2 timeouts",
            "7 evicted",
            "cache degraded to memory-only",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in '{text}'");
        }
    }

    #[test]
    fn disk_tier_clause_appears_only_with_a_disk_cache() {
        assert!(
            !stats().summary().contains("disk tier"),
            "memory-only sweeps stay quiet about the disk tier"
        );
        let on_disk = SweepStats {
            disk_enabled: true,
            disk_entries: 12,
            disk_bytes: 4096,
            ..stats()
        };
        assert!(
            on_disk.summary().contains("disk tier 12 entries / 4096 B"),
            "{}",
            on_disk.summary()
        );
        let empty_disk = SweepStats {
            disk_enabled: true,
            ..stats()
        };
        assert!(
            empty_disk.summary().contains("disk tier 0 entries / 0 B"),
            "an attached-but-empty tier is still reported: {}",
            empty_disk.summary()
        );
    }
}
