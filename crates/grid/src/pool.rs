//! A std-only work-stealing worker pool for embarrassingly parallel maps.
//!
//! Sweep cells are independent deterministic simulations of wildly varying
//! cost (a 13B-parameter FSDP cell simulates ~50× longer than a 1.3B
//! pipeline cell), so static partitioning leaves workers idle. Each worker
//! owns a deque seeded round-robin; it pops work from its own front and,
//! when empty, steals from the *back* of the fullest other deque — the
//! classic work-stealing discipline, built only on `std::thread` and
//! `Mutex<VecDeque>` (the deques are touched once per cell, so lock traffic
//! is negligible next to a cell's multi-millisecond simulation).
//!
//! Results are collected by input index, so `map` always returns outputs in
//! input order regardless of which worker computed what — the determinism
//! anchor the grid executor's bit-identical-to-serial guarantee rests on.

use crate::guard::{run_cell, CellCtx, CellReport, GuardConfig};
use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Mutex;

/// A panic captured from one item's closure by [`Pool::try_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The panic payload rendered to text (`&str`/`String` payloads; other
    /// payload types get a placeholder).
    pub message: String,
}

impl WorkerPanic {
    pub(crate) fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        WorkerPanic { message }
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked: {}", self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// A fixed-width worker pool.
///
/// The pool holds no threads between calls: [`Pool::map`] spawns scoped
/// workers and joins them before returning, so borrowed items and closures
/// need no `'static` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine: `std::thread::available_parallelism`,
    /// falling back to 1 where the platform cannot say.
    pub fn with_available_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order.
    ///
    /// `f` must be deterministic for the pool to preserve the grid
    /// subsystem's parallel-equals-serial guarantee; the pool itself never
    /// reorders, drops, or duplicates items.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("{p}"),
            })
            .collect()
    }

    /// Like [`Pool::map`], but a panicking closure fails only that item's
    /// result slot instead of tearing down the whole sweep: the panic is
    /// caught on the worker, rendered into a [`WorkerPanic`], and returned
    /// in input order alongside the successes. The worker thread survives
    /// and moves on to its next item.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, WorkerPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.schedule(items, |item: &T| {
            std::panic::catch_unwind(AssertUnwindSafe(|| f(item)))
                .map_err(WorkerPanic::from_payload)
        })
    }

    /// Like [`Pool::try_map`], but every item runs under `guard`: per-cell
    /// deadlines with cooperative cancellation (the closure receives the
    /// attempt's [`CellCtx`]) and bounded exponential-backoff retries. Each
    /// slot carries a full [`CellReport`] — the value or a typed
    /// [`CellFailure`](crate::guard::CellFailure), plus attempt accounting
    /// — in input order. With the default [`GuardConfig`] this is exactly
    /// [`Pool::try_map`] wearing a richer return type.
    pub fn try_map_guarded<T, R, F>(
        &self,
        items: &[T],
        guard: &GuardConfig,
        f: F,
    ) -> Vec<CellReport<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &CellCtx) -> R + Sync,
    {
        self.schedule(items, |item: &T| run_cell(guard, |ctx| f(item, ctx)))
    }

    /// The work-stealing scheduler shared by every map flavor: applies
    /// `call` (which must not unwind — the callers wrap panics themselves)
    /// to each item and collects results by input index.
    fn schedule<T, R, C>(&self, items: &[T], call: C) -> Vec<R>
    where
        T: Sync,
        R: Send,
        C: Fn(&T) -> R + Sync,
    {
        let m = crate::metrics::grid_metrics();
        m.pool_tasks.add(items.len() as u64);
        let workers = self.workers.min(items.len());
        m.pool_workers.set(workers.max(1) as i64);
        if workers <= 1 {
            return items.iter().map(call).collect();
        }

        // Round-robin initial distribution of item indices.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
            .collect();

        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let call = &call;
                scope.spawn(move || {
                    let worker_start = olab_metrics::now_if_enabled();
                    let mut busy_ns = 0u64;
                    while let Some(idx) = next_item(deques, w) {
                        let item_start = olab_metrics::now_if_enabled();
                        let result = call(&items[idx]);
                        if let Some(t) = item_start {
                            busy_ns += t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        }
                        // A worker dies with the pool if the main thread
                        // already panicked and dropped the receiver.
                        if tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                    if let Some(t) = worker_start {
                        let total = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        m.pool_worker_busy_ns.observe(busy_ns);
                        m.pool_worker_idle_ns.observe(total.saturating_sub(busy_ns));
                    }
                });
            }
            drop(tx);

            let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            for (idx, result) in rx {
                results[idx] = Some(result);
            }
            results
                .into_iter()
                .map(|r| r.expect("worker delivered every index"))
                .collect()
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// Pops the next index for worker `w`: its own front first, then a steal
/// from the back of the fullest other deque.
fn next_item(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    let m = crate::metrics::grid_metrics();
    {
        let mut own = deques[w].lock().expect("pool deque poisoned");
        m.pool_queue_depth.observe(own.len() as u64);
        if let Some(idx) = own.pop_front() {
            return Some(idx);
        }
    }
    loop {
        let victim = deques
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != w)
            .max_by_key(|(_, d)| d.lock().expect("pool deque poisoned").len())?;
        // Bind before matching: a guard in a match scrutinee lives to the
        // end of the match, and the None arm below re-locks every deque.
        let stolen = {
            let mut victim_deque = victim.1.lock().expect("pool deque poisoned");
            m.pool_queue_depth.observe(victim_deque.len() as u64);
            victim_deque.pop_back()
        };
        match stolen {
            Some(idx) => {
                m.pool_steals.inc();
                return Some(idx);
            }
            // Raced with the victim draining its own deque; rescan, and
            // stop once every deque is empty.
            None => {
                if deques
                    .iter()
                    .all(|d| d.lock().expect("pool deque poisoned").is_empty())
                {
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = Pool::new(8).map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_for_every_width() {
        let items: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 7, 64] {
            assert_eq!(Pool::new(workers).map(&items, |&x| x * x + 1), serial);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Pool::new(4).map(&items, |&i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_items_are_stolen_not_serialized() {
        // One pathological item must not stop the other workers from
        // draining the rest of the queue in parallel: total wall-clock
        // stays near the slowest item, not the sum.
        let items: Vec<u64> = (0..16).collect();
        let start = std::time::Instant::now();
        Pool::new(4).map(&items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(if x == 0 {
                80
            } else {
                5
            }));
        });
        let wall = start.elapsed();
        assert!(
            wall < std::time::Duration::from_millis(160),
            "stealing failed, wall {wall:?}"
        );
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(pool.map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert!(Pool::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn a_panic_mid_sweep_fails_only_that_slot() {
        let items: Vec<u64> = (0..32).collect();
        for workers in [1, 4] {
            let out = Pool::new(workers).try_map(&items, |&x| {
                if x == 13 {
                    panic!("unlucky item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let p = r.as_ref().unwrap_err();
                    assert!(p.message.contains("unlucky item 13"), "got {p}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 2, "slot {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked: boom")]
    fn map_repropagates_worker_panics() {
        let items: Vec<u64> = (0..8).collect();
        Pool::new(2).map(&items, |&x| if x == 3 { panic!("boom") } else { x });
    }

    #[test]
    fn guarded_map_matches_try_map_with_default_guard() {
        let items: Vec<u64> = (0..40).collect();
        for workers in [1, 4] {
            let reports = Pool::new(workers).try_map_guarded(
                &items,
                &crate::guard::GuardConfig::default(),
                |&x, ctx| {
                    assert_eq!(ctx.attempt(), 0);
                    x * 3
                },
            );
            assert_eq!(reports.len(), items.len());
            for (i, r) in reports.iter().enumerate() {
                assert_eq!(*r.result.as_ref().unwrap(), i as u64 * 3);
                assert_eq!((r.attempts, r.timeouts), (1, 0));
            }
        }
    }

    #[test]
    fn guarded_map_retries_transient_panics_in_place() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<u64> = (0..16).collect();
        let first_tries: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
        let guard = crate::guard::GuardConfig {
            retries: 2,
            backoff_base_s: 0.0,
            ..Default::default()
        };
        let reports = Pool::new(4).try_map_guarded(&items, &guard, |&x, _| {
            // Every odd item panics exactly once, then succeeds.
            if x % 2 == 1 && first_tries[x as usize].fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient wobble on {x}");
            }
            x + 100
        });
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(*r.result.as_ref().unwrap(), i as u64 + 100, "slot {i}");
            let expected_attempts = if i % 2 == 1 { 2 } else { 1 };
            assert_eq!(r.attempts, expected_attempts, "slot {i}");
        }
    }
}
