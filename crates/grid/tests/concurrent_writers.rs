//! Multi-process cache-safety pins: two independent `ResultCache`
//! instances sharing one directory — the moral equivalent of two sweep
//! processes pointed at the same `--cache` — must stay consistent under
//! racing puts and gets, and must never serve a torn entry.

use olab_grid::{CacheTier, CacheValue, Reader, ResultCache, Writer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A small but multi-field payload so torn writes have something to tear.
#[derive(Debug, Clone, PartialEq)]
struct Payload {
    id: u64,
    metric: f64,
    tag: String,
}

impl CacheValue for Payload {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_f64(self.metric);
        w.put_str(&self.tag);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Payload {
            id: r.get_u64()?,
            metric: r.get_f64()?,
            tag: r.get_str()?,
        })
    }
}

fn payload(i: u64) -> Payload {
    Payload {
        id: i,
        metric: i as f64 * 0.5 - 3.0,
        tag: format!("cell payload {i}"),
    }
}

fn descriptor(i: u64) -> String {
    format!("concurrent writer cell {i}")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("olab-grid-concurrent-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_instances_racing_the_same_directory_stay_consistent() {
    let dir = temp_dir("race");
    let a: ResultCache<Payload> = ResultCache::with_disk(&dir).unwrap();
    let b: ResultCache<Payload> = ResultCache::with_disk(&dir).unwrap();
    let wrong = AtomicUsize::new(0);

    // Both instances write and read the same key space concurrently, with
    // interleaved orders, across several rounds. Every get must be either
    // a miss or the exact right payload — never a torn or foreign value.
    std::thread::scope(|scope| {
        for (cache, stride) in [(&a, 1u64), (&b, 3u64)] {
            let wrong = &wrong;
            scope.spawn(move || {
                for round in 0..3u64 {
                    for n in 0..64u64 {
                        let i = (n * stride + round * 7) % 64;
                        cache.insert(&descriptor(i), payload(i));
                        if let Some((got, _tier)) = cache.lookup(&descriptor((i + 13) % 64)) {
                            if got != payload((i + 13) % 64) {
                                wrong.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(wrong.load(Ordering::SeqCst), 0, "a wrong value was served");

    // After the dust settles, a third instance sees one intact entry per
    // key — no torn files, no quarantines, no leftover tmp files.
    let fresh: ResultCache<Payload> = ResultCache::with_disk(&dir).unwrap();
    for i in 0..64u64 {
        assert_eq!(
            fresh.lookup(&descriptor(i)),
            Some((payload(i), CacheTier::Disk)),
            "cell {i} must be intact on disk"
        );
    }
    assert_eq!(fresh.counters().quarantined, 0);
    let tmps = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(tmps, 0, "every racing write renamed its tmp into place");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_entry_planted_mid_race_is_never_served() {
    let dir = temp_dir("torn");
    let writer: ResultCache<Payload> = ResultCache::with_disk(&dir).unwrap();
    writer.insert(&descriptor(0), payload(0));
    let key = ResultCache::<Payload>::key_of(&descriptor(0));
    let entry = dir.join(format!("{key:016x}.cell"));
    let whole = std::fs::read(&entry).unwrap();

    // A "reader process" hammers the entry while this thread repeatedly
    // tears it (truncated rewrite) and heals it (full rewrite). The reader
    // must only ever observe the correct payload or a miss.
    let served_wrong = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let entry = &entry;
        let whole = &whole;
        let served_wrong = &served_wrong;
        let dir = &dir;
        scope.spawn(move || {
            for _ in 0..200 {
                let reader: ResultCache<Payload> = ResultCache::with_disk(dir).unwrap();
                if let Some((got, _)) = reader.lookup(&descriptor(0)) {
                    if got != payload(0) {
                        served_wrong.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        });
        for cut in [1usize, 8, whole.len() / 2, whole.len() - 1] {
            for _ in 0..25 {
                let _ = std::fs::write(entry, &whole[..cut]);
                let _ = std::fs::write(entry, whole.as_slice());
            }
        }
    });
    assert_eq!(
        served_wrong.load(Ordering::SeqCst),
        0,
        "a torn entry decoded into a wrong answer"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
