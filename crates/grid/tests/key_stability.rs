//! Unit tests for cache-key hashing: the digest must be stable across
//! builds (the disk tier outlives the process), must change whenever the
//! descriptor's field order or embedded schema version changes, and must
//! never let two differently-shaped descriptors alias.
//!
//! Previously these properties were only exercised indirectly through
//! `tests/integration_grid.rs`; here they are pinned at the unit level.

use olab_grid::{fnv1a_64, CacheValue, Reader, ResultCache, StableHasher, Writer};

#[derive(Debug, Clone, PartialEq)]
struct Unit;

impl CacheValue for Unit {
    fn encode(&self, _w: &mut Writer) {}
    fn decode(_r: &mut Reader<'_>) -> Option<Self> {
        Some(Unit)
    }
}

fn key(descriptor: &str) -> u64 {
    ResultCache::<Unit>::key_of(descriptor)
}

#[test]
fn key_is_pinned_across_builds() {
    // The disk tier's file names embed this digest; if the hash function
    // ever changes, every existing cache directory silently goes cold.
    // Golden values computed from the FNV-1a 64 definition.
    assert_eq!(key(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(key("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(
        key("v1|cal1|A100x4 GPT-3 XL FSDP b8"),
        fnv1a_64(b"v1|cal1|A100x4 GPT-3 XL FSDP b8"),
    );
}

#[test]
fn field_reordering_changes_the_key() {
    // The descriptor is a canonical string: the same fields spelled in a
    // different order must be a different key, so any drift in the
    // descriptor-building code invalidates the cache instead of serving
    // results computed under the old layout.
    let a = key("sku=A100 n=4 batch=8 seq=1024");
    let b = key("sku=A100 batch=8 n=4 seq=1024");
    assert_ne!(a, b);

    // The same holds at the StableHasher level for typed writes.
    let mut h1 = StableHasher::new();
    h1.write_str("batch")
        .write_u64(8)
        .write_str("seq")
        .write_u64(1024);
    let mut h2 = StableHasher::new();
    h2.write_str("seq")
        .write_u64(1024)
        .write_str("batch")
        .write_u64(8);
    assert_ne!(h1.finish(), h2.finish());
}

#[test]
fn version_bump_changes_the_key() {
    // Schema and calibration versions are embedded in the descriptor; a
    // bump in either must address a fresh cache slot.
    let base = key("v1|cal1|A100x4 GPT-3 XL FSDP b8");
    assert_ne!(base, key("v2|cal1|A100x4 GPT-3 XL FSDP b8"));
    assert_ne!(base, key("v1|cal2|A100x4 GPT-3 XL FSDP b8"));
}

#[test]
fn adjacent_field_boundaries_do_not_alias() {
    // FNV-1a hashes a flat byte stream, so "ab"+"c" and "a"+"bc" would
    // collide if descriptors didn't embed their own delimiters. The
    // canonical descriptors do (e.g. `field=value` + separators); pin both
    // facts so nobody removes the delimiters thinking they're cosmetic.
    let mut h1 = StableHasher::new();
    h1.write_str("ab").write_str("c");
    let mut h2 = StableHasher::new();
    h2.write_str("a").write_str("bc");
    assert_eq!(h1.finish(), h2.finish(), "raw concatenation aliases");

    assert_ne!(key("batch=1 seq=24"), key("batch=12 seq=4"));
}

#[test]
fn numeric_formatting_is_part_of_the_key() {
    // f64 fields are written via their exact bit pattern when hashed in
    // binary, and via their canonical decimal form in descriptors. Either
    // way, distinct values must produce distinct keys.
    let mut h1 = StableHasher::new();
    h1.write_f64(0.1);
    let mut h2 = StableHasher::new();
    h2.write_f64(0.1 + 1e-17); // same printed "0.1", different bits? keep exact
    if (0.1f64).to_bits() == (0.1 + 1e-17f64).to_bits() {
        // Values that round to the same bits must hash identically.
        assert_eq!(h1.finish(), h2.finish());
    } else {
        assert_ne!(h1.finish(), h2.finish());
    }
    assert_ne!(key("cap=300"), key("cap=300.0"));
}

#[test]
fn same_descriptor_always_hits_regardless_of_value_identity() {
    let cache: ResultCache<Unit> = ResultCache::in_memory();
    cache.insert("cell", Unit);
    assert!(cache.lookup("cell").is_some());
    assert!(cache.lookup("cell ").is_none(), "whitespace is significant");
    assert!(cache.lookup("Cell").is_none(), "case is significant");
}
