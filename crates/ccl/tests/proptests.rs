//! Property-based tests for collective lowering.

use olab_ccl::{lower, wire_bytes_per_rank, Algorithm, Collective, CollectiveKind};
use olab_gpu::{GpuSku, Precision, SkuKind};
use olab_net::Topology;
use olab_sim::GpuId;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::AllReduce),
        Just(CollectiveKind::AllGather),
        Just(CollectiveKind::ReduceScatter),
        Just(CollectiveKind::Broadcast),
        Just(CollectiveKind::AllToAll),
    ]
}

fn node(sku: &GpuSku, n: usize) -> Topology {
    match sku.vendor {
        olab_gpu::Vendor::Nvidia => {
            Topology::nvswitch(n, sku.link_bw_unidir_gbs, sku.link_latency_us)
        }
        olab_gpu::Vendor::Amd => {
            Topology::full_mesh(n, sku.link_bw_unidir_gbs, sku.link_latency_us)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wire volume is monotone in message size and bounded by 2S.
    #[test]
    fn wire_bytes_are_monotone_and_bounded(
        kind in any_kind(),
        bytes in 1u64..(1 << 31),
        n in 2usize..16,
    ) {
        for algo in [Algorithm::Ring, Algorithm::Tree] {
            let v = wire_bytes_per_rank(kind, algo, bytes, n);
            let v2 = wire_bytes_per_rank(kind, algo, bytes * 2, n);
            prop_assert!(v > 0.0);
            prop_assert!(v <= 2.0 * bytes as f64 + 1e-6);
            prop_assert!(v2 >= v);
        }
    }

    /// Lowered collectives have positive, finite durations that grow with
    /// message size.
    #[test]
    fn lowering_is_sane_on_all_skus(
        bytes in 1024u64..(1 << 30),
        kind in any_kind(),
    ) {
        for sku_kind in SkuKind::ALL {
            let sku = sku_kind.sku();
            let topo = node(&sku, 4);
            let group: Vec<GpuId> = (0..4).map(GpuId).collect();
            let coll = Collective::new(kind, bytes, group);
            let algo = Algorithm::auto(kind, bytes, 4);
            let op = lower(&coll, algo, &sku, &topo, Precision::Fp16);
            prop_assert!(op.isolated_duration_s().is_finite());
            prop_assert!(op.isolated_duration_s() > 0.0);
            prop_assert!(op.sm_fraction > 0.0 && op.sm_fraction < 0.5);
            prop_assert!(op.hbm_bytes_per_rank >= op.wire_bytes_per_rank);

            let bigger = Collective::new(kind, bytes * 2, (0..4).map(GpuId).collect());
            let op2 = lower(&bigger, algo, &sku, &topo, Precision::Fp16);
            prop_assert!(op2.isolated_duration_s() >= op.isolated_duration_s());
        }
    }

    /// Bus bandwidth never exceeds the wire rate, and approaches it for
    /// large messages.
    #[test]
    fn busbw_is_bounded_by_wire_rate(bytes in 1024u64..(1u64 << 32)) {
        let sku = GpuSku::h100();
        let topo = node(&sku, 8);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        let coll = Collective::all_reduce(bytes, group);
        let op = lower(&coll, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        prop_assert!(op.isolated_busbw_gbs() * 1e9 <= op.wire_rate_bytes_per_sec * (1.0 + 1e-9));
    }

    /// Auto algorithm selection is total and latency steps are positive.
    #[test]
    fn auto_selection_is_total(kind in any_kind(), bytes in 1u64..(1 << 31), n in 2usize..32) {
        let algo = Algorithm::auto(kind, bytes, n);
        prop_assert!(algo.latency_steps(kind, n) >= 1);
    }
}
