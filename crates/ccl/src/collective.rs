//! Logical collective operations.

use crate::CclError;
use olab_sim::GpuId;
use std::fmt;

/// The communication patterns used by FSDP and pipeline parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Reduce a buffer across ranks, every rank gets the result.
    AllReduce,
    /// Concatenate per-rank shards onto every rank (FSDP parameter
    /// unsharding).
    AllGather,
    /// Reduce across ranks, scatter shards (FSDP gradient reduction).
    ReduceScatter,
    /// Copy a buffer from one root to every rank.
    Broadcast,
    /// Exchange distinct shards between every pair of ranks.
    AllToAll,
    /// A point-to-point transfer (pipeline activations/gradients).
    PointToPoint,
}

impl CollectiveKind {
    /// Whether the collective performs arithmetic (reductions).
    pub fn reduces(self) -> bool {
        matches!(
            self,
            CollectiveKind::AllReduce | CollectiveKind::ReduceScatter
        )
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveKind::AllReduce => write!(f, "all-reduce"),
            CollectiveKind::AllGather => write!(f, "all-gather"),
            CollectiveKind::ReduceScatter => write!(f, "reduce-scatter"),
            CollectiveKind::Broadcast => write!(f, "broadcast"),
            CollectiveKind::AllToAll => write!(f, "all-to-all"),
            CollectiveKind::PointToPoint => write!(f, "send-recv"),
        }
    }
}

/// A logical collective over a group of ranks.
///
/// `bytes` is the *logical buffer size*: the size of the buffer being
/// reduced (all-reduce), the full gathered output (all-gather), the full
/// pre-reduction input per rank (reduce-scatter), the broadcast payload, the
/// per-rank all-to-all buffer, or the message size (point-to-point).
#[derive(Debug, Clone, PartialEq)]
pub struct Collective {
    /// The communication pattern.
    pub kind: CollectiveKind,
    /// Logical buffer size in bytes.
    pub bytes: u64,
    /// Participating ranks (2 for point-to-point).
    pub group: Vec<GpuId>,
}

impl Collective {
    /// Creates a collective, validating the group with a typed error.
    ///
    /// # Errors
    ///
    /// [`CclError::GroupTooSmall`] for fewer than 2 distinct ranks,
    /// [`CclError::NotPairwise`] for a point-to-point group that is not
    /// exactly 2, and [`CclError::ZeroBytes`] for an empty payload.
    pub fn try_new(
        kind: CollectiveKind,
        bytes: u64,
        mut group: Vec<GpuId>,
    ) -> Result<Self, CclError> {
        group.sort_unstable();
        group.dedup();
        if group.len() < 2 {
            return Err(CclError::GroupTooSmall { got: group.len() });
        }
        if kind == CollectiveKind::PointToPoint && group.len() != 2 {
            return Err(CclError::NotPairwise { got: group.len() });
        }
        if bytes == 0 {
            return Err(CclError::ZeroBytes);
        }
        Ok(Collective { kind, bytes, group })
    }

    /// Creates a collective, validating the group.
    ///
    /// # Panics
    ///
    /// Panics where [`Collective::try_new`] would error.
    pub fn new(kind: CollectiveKind, bytes: u64, group: Vec<GpuId>) -> Self {
        match Self::try_new(kind, bytes, group) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// An all-reduce of `bytes` over `group`.
    pub fn all_reduce(bytes: u64, group: Vec<GpuId>) -> Self {
        Self::new(CollectiveKind::AllReduce, bytes, group)
    }

    /// An all-gather producing `bytes` of output on every rank.
    pub fn all_gather(bytes: u64, group: Vec<GpuId>) -> Self {
        Self::new(CollectiveKind::AllGather, bytes, group)
    }

    /// A reduce-scatter consuming `bytes` of input per rank.
    pub fn reduce_scatter(bytes: u64, group: Vec<GpuId>) -> Self {
        Self::new(CollectiveKind::ReduceScatter, bytes, group)
    }

    /// A point-to-point transfer of `bytes` from `src` to `dst`.
    pub fn p2p(bytes: u64, src: GpuId, dst: GpuId) -> Self {
        Self::new(CollectiveKind::PointToPoint, bytes, vec![src, dst])
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.group.len()
    }
}

impl fmt::Display for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:.1} MiB x{}]",
            self.kind,
            self.bytes as f64 / (1 << 20) as f64,
            self.group.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u16) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn constructors_set_kind_and_group() {
        let c = Collective::all_reduce(1024, group(4));
        assert_eq!(c.kind, CollectiveKind::AllReduce);
        assert_eq!(c.group_size(), 4);
    }

    #[test]
    fn group_is_deduplicated() {
        let c = Collective::all_gather(8, vec![GpuId(1), GpuId(0), GpuId(1)]);
        assert_eq!(c.group, vec![GpuId(0), GpuId(1)]);
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn singleton_group_is_rejected() {
        Collective::all_reduce(8, vec![GpuId(0)]);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            Collective::try_new(CollectiveKind::AllReduce, 8, vec![GpuId(0), GpuId(0)]),
            Err(CclError::GroupTooSmall { got: 1 })
        );
        assert_eq!(
            Collective::try_new(CollectiveKind::PointToPoint, 8, group(3)),
            Err(CclError::NotPairwise { got: 3 })
        );
        assert_eq!(
            Collective::try_new(CollectiveKind::AllGather, 0, group(2)),
            Err(CclError::ZeroBytes)
        );
        assert!(Collective::try_new(CollectiveKind::AllReduce, 8, group(2)).is_ok());
    }

    #[test]
    fn only_reducing_collectives_report_reduces() {
        assert!(CollectiveKind::AllReduce.reduces());
        assert!(CollectiveKind::ReduceScatter.reduces());
        assert!(!CollectiveKind::AllGather.reduces());
        assert!(!CollectiveKind::PointToPoint.reduces());
    }

    #[test]
    fn display_shows_size_and_fanout() {
        let c = Collective::p2p(1 << 20, GpuId(0), GpuId(1));
        assert_eq!(c.to_string(), "send-recv[1.0 MiB x2]");
    }
}
