//! Lowering logical collectives to resource demands.

use crate::{channel_count, wire_bytes_per_rank, Algorithm, CclError, Collective, CollectiveKind};
use olab_gpu::{GpuSku, Precision};
use olab_net::Topology;
use std::fmt;

/// A lowered collective: everything the execution engine needs to know about
/// what the collective consumes while it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CommOp {
    /// The logical collective.
    pub collective: Collective,
    /// The algorithm chosen.
    pub algorithm: Algorithm,
    /// Bytes each rank pushes onto the wire.
    pub wire_bytes_per_rank: f64,
    /// Achievable wire rate per rank in bytes/s (bus bandwidth after
    /// efficiency, or the point-to-point link rate).
    pub wire_rate_bytes_per_sec: f64,
    /// Fixed latency: per-step hop latency plus kernel launch, seconds.
    pub latency_s: f64,
    /// HBM traffic per rank (staging amplification), bytes.
    pub hbm_bytes_per_rank: f64,
    /// Reduction FLOPs per rank (all-reduce / reduce-scatter math).
    pub reduction_flops_per_rank: f64,
    /// Fraction of the GPU's SMs occupied by the channel kernels.
    pub sm_fraction: f64,
    /// Number of channels used.
    pub channels: u32,
}

impl CommOp {
    /// Time the collective takes with nothing else running, in seconds.
    pub fn isolated_duration_s(&self) -> f64 {
        self.latency_s + self.wire_bytes_per_rank / self.wire_rate_bytes_per_sec
    }

    /// The bandwidth (beta) term of the alpha-beta cost alone: wire bytes
    /// over wire rate, without the fixed latency. Together with
    /// [`CommOp::latency_s`] this decomposes
    /// [`CommOp::isolated_duration_s`] exactly, which lets differential
    /// checks (the conformance oracle) attribute a divergence to the alpha
    /// or the beta term.
    pub fn wire_time_s(&self) -> f64 {
        self.wire_bytes_per_rank / self.wire_rate_bytes_per_sec
    }

    /// Effective bus bandwidth of the isolated collective, in GB/s
    /// (`wire bytes / time` — the number `nccl-tests` reports as `busbw`).
    pub fn isolated_busbw_gbs(&self) -> f64 {
        self.wire_bytes_per_rank / self.isolated_duration_s() / 1e9
    }
}

impl fmt::Display for CommOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} ({} ch, {:.2} ms isolated)",
            self.collective,
            self.algorithm,
            self.channels,
            self.isolated_duration_s() * 1e3
        )
    }
}

/// Lowers a collective onto a SKU + topology.
///
/// `precision` sets the element width for reduction math. All ranks are
/// assumed symmetric (single-node, homogeneous GPUs), so per-rank figures
/// apply to every member of the group.
///
/// # Panics
///
/// Panics where [`try_lower`] would error (group outside the topology,
/// zero payload).
pub fn lower(
    collective: &Collective,
    algorithm: Algorithm,
    sku: &GpuSku,
    topology: &Topology,
    precision: Precision,
) -> CommOp {
    match try_lower(collective, algorithm, sku, topology, precision) {
        Ok(op) => op,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`lower`] with typed errors.
///
/// # Errors
///
/// [`CclError::GroupExceedsTopology`] when a rank lies outside the
/// topology, [`CclError::ZeroBytes`] when the collective moves no data.
pub fn try_lower(
    collective: &Collective,
    algorithm: Algorithm,
    sku: &GpuSku,
    topology: &Topology,
    precision: Precision,
) -> Result<CommOp, CclError> {
    let n = collective.group_size();
    if let Some(&rank) = collective
        .group
        .iter()
        .find(|g| g.index() >= topology.n_gpus())
    {
        return Err(CclError::GroupExceedsTopology {
            rank,
            n_gpus: topology.n_gpus(),
        });
    }
    if collective.bytes == 0 {
        return Err(CclError::ZeroBytes);
    }
    let profile = sku.contention();

    let wire = wire_bytes_per_rank(collective.kind, algorithm, collective.bytes, n);

    let raw_rate_gbs = match collective.kind {
        CollectiveKind::PointToPoint => {
            topology.p2p_bw_gbs(collective.group[0], collective.group[1])
        }
        CollectiveKind::AllToAll => topology.injection_bw_gbs(),
        _ => topology.ring_busbw_gbs(n),
    };
    let efficiency = match collective.kind {
        CollectiveKind::PointToPoint => profile.p2p_efficiency,
        _ => profile.ring_busbw_efficiency,
    };
    let wire_rate = if algorithm == Algorithm::Hierarchical {
        // Two-phase cost: ring phases inside each node at the intra rate,
        // plus an inter-node phase where each NIC carries only 1/g of the
        // payload (g ranks per node reduce-scatter first).
        let g = topology.gpus_per_node().min(n).max(1) as f64;
        let k = (n as f64 / g).ceil().max(1.0);
        let s = collective.bytes as f64;
        // All-reduce needs both a reduce and a gather phase at each level;
        // all-gather / reduce-scatter need one.
        let phases = if collective.kind == CollectiveKind::AllReduce {
            2.0
        } else {
            1.0
        };
        let intra = topology.injection_bw_gbs() * 1e9 * profile.ring_busbw_efficiency;
        let nic = (topology.nic_bw_gbs() * 1e9 * profile.ring_busbw_efficiency).min(intra * g);
        let t_intra = phases * s * (g - 1.0) / g / intra;
        let t_inter = if k > 1.0 {
            phases * s * (k - 1.0) / k / nic
        } else {
            0.0
        };
        let t = (t_intra + t_inter).max(1e-12);
        wire / t
    } else {
        raw_rate_gbs * 1e9 * efficiency
    };

    let steps = algorithm.latency_steps(collective.kind, n);
    let latency_s = f64::from(steps) * topology.latency_s() + profile.collective_launch_us * 1e-6;

    let channels = channel_count(sku.vendor, wire);
    let sm_fraction = profile.comm_sm_fraction(channels);

    let elems = collective.bytes as f64 / precision.bytes() as f64;
    let reduction_flops = if collective.kind.reduces() {
        elems * (n as f64 - 1.0) / n as f64
    } else {
        0.0
    };

    Ok(CommOp {
        collective: collective.clone(),
        algorithm,
        wire_bytes_per_rank: wire,
        wire_rate_bytes_per_sec: wire_rate,
        latency_s,
        hbm_bytes_per_rank: wire * profile.hbm_bytes_per_wire_byte,
        reduction_flops_per_rank: reduction_flops,
        sm_fraction,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_sim::GpuId;

    fn group(n: u16) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn h100_node() -> (GpuSku, Topology) {
        let sku = GpuSku::h100();
        let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    fn mi250_node() -> (GpuSku, Topology) {
        let sku = GpuSku::mi250();
        let topo = Topology::full_mesh(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    #[test]
    fn gib_all_reduce_takes_single_digit_milliseconds_on_h100() {
        let (sku, topo) = h100_node();
        let ar = Collective::all_reduce(1 << 30, group(4));
        let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let ms = op.isolated_duration_s() * 1e3;
        // 1.5 GiB on wire at ~360 GB/s => ~4.5 ms.
        assert!((2.0..12.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn amd_fabric_is_slower_than_nvlink_for_the_same_collective() {
        let (h, ht) = h100_node();
        let (m, mt) = mi250_node();
        let ar = Collective::all_reduce(1 << 28, group(4));
        let on_h = lower(&ar, Algorithm::Ring, &h, &ht, Precision::Fp16);
        let on_m = lower(&ar, Algorithm::Ring, &m, &mt, Precision::Fp16);
        assert!(on_m.isolated_duration_s() > 2.0 * on_h.isolated_duration_s());
    }

    #[test]
    fn reducing_collectives_carry_reduction_flops() {
        let (sku, topo) = h100_node();
        let rs = Collective::reduce_scatter(1 << 20, group(4));
        let op = lower(&rs, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let elems = (1 << 20) as f64 / 2.0;
        assert!((op.reduction_flops_per_rank - elems * 0.75).abs() < 1.0);

        let ag = Collective::all_gather(1 << 20, group(4));
        let op = lower(&ag, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        assert_eq!(op.reduction_flops_per_rank, 0.0);
    }

    #[test]
    fn hbm_traffic_exceeds_wire_traffic() {
        let (sku, topo) = h100_node();
        let ar = Collective::all_reduce(1 << 24, group(4));
        let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        assert!(op.hbm_bytes_per_rank >= 2.0 * op.wire_bytes_per_rank);
    }

    #[test]
    fn sm_fraction_is_positive_and_bounded() {
        let (sku, topo) = h100_node();
        for bytes in [1u64 << 10, 1 << 24, 1 << 30] {
            let ar = Collective::all_reduce(bytes, group(4));
            let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
            assert!(op.sm_fraction > 0.0);
            assert!(op.sm_fraction <= sku.contention().max_comm_sm_fraction);
        }
    }

    #[test]
    fn p2p_on_mesh_uses_the_single_link() {
        let (sku, topo) = mi250_node();
        let p = Collective::p2p(1 << 26, GpuId(0), GpuId(1));
        let op = lower(&p, Algorithm::Direct, &sku, &topo, Precision::Fp16);
        // One of three peer links (150/3 GB/s) at the MI250's calibrated
        // 0.50 point-to-point efficiency = 25 GB/s.
        let gbs = op.wire_rate_bytes_per_sec / 1e9;
        assert!((gbs - 25.0).abs() < 0.5, "got {gbs} GB/s");
    }

    #[test]
    fn alpha_beta_terms_decompose_the_isolated_duration() {
        let (sku, topo) = h100_node();
        let ar = Collective::all_reduce(1 << 26, group(4));
        let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let recomposed = op.latency_s + op.wire_time_s();
        assert!((recomposed - op.isolated_duration_s()).abs() < 1e-15);
        assert!(op.wire_time_s() > 0.0 && op.latency_s > 0.0);
    }

    #[test]
    fn busbw_converges_to_wire_rate_for_large_messages() {
        let (sku, topo) = h100_node();
        let big = Collective::all_gather(1 << 32, group(4));
        let op = lower(&big, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let ratio = op.isolated_busbw_gbs() * 1e9 / op.wire_rate_bytes_per_sec;
        assert!(ratio > 0.98, "latency should be negligible, ratio {ratio}");
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        let sku = GpuSku::h100();
        let topo = Topology::multi_node(2, 4, sku.link_bw_unidir_gbs, 4.0, 50.0, 10.0);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        let ar = Collective::all_reduce(1 << 28, group);
        let flat = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let hier = lower(&ar, Algorithm::Hierarchical, &sku, &topo, Precision::Fp16);
        // NIC traffic halves (2S(k-1)/k vs ~2S), minus the intra phases.
        assert!(
            hier.isolated_duration_s() < 0.75 * flat.isolated_duration_s(),
            "hierarchical {} vs flat {}",
            hier.isolated_duration_s(),
            flat.isolated_duration_s()
        );
    }

    #[test]
    fn auto_for_upgrades_node_spanning_reductions() {
        let topo = Topology::multi_node(2, 4, 450.0, 4.0, 50.0, 10.0);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        let algo = Algorithm::auto_for(CollectiveKind::AllReduce, 1 << 28, &group, &topo);
        assert_eq!(algo, Algorithm::Hierarchical);
        // Intra-node groups keep the flat ring.
        let local: Vec<GpuId> = (0..4).map(GpuId).collect();
        let algo = Algorithm::auto_for(CollectiveKind::AllReduce, 1 << 28, &local, &topo);
        assert_eq!(algo, Algorithm::Ring);
        // Single-node fabrics are untouched.
        let single = Topology::nvswitch(8, 450.0, 4.0);
        let algo = Algorithm::auto_for(CollectiveKind::AllReduce, 1 << 28, &group, &single);
        assert_eq!(algo, Algorithm::Ring);
    }

    #[test]
    fn try_lower_reports_typed_errors_and_lower_panics_with_them() {
        let (sku, topo) = h100_node();
        let out_of_range = Collective::all_reduce(8, vec![GpuId(0), GpuId(9)]);
        assert!(matches!(
            try_lower(&out_of_range, Algorithm::Ring, &sku, &topo, Precision::Fp16),
            Err(CclError::GroupExceedsTopology {
                rank: GpuId(9),
                n_gpus: 4
            })
        ));
        // Zero-byte collectives cannot be built, but a hand-rolled one must
        // still be rejected at lowering time.
        let zeroed = Collective {
            kind: CollectiveKind::AllReduce,
            bytes: 0,
            group: group(4),
        };
        assert_eq!(
            try_lower(&zeroed, Algorithm::Ring, &sku, &topo, Precision::Fp16),
            Err(CclError::ZeroBytes)
        );
    }

    #[test]
    #[should_panic(expected = "collective group exceeds topology")]
    fn lower_panics_when_the_group_exceeds_the_topology() {
        let (sku, topo) = h100_node();
        let c = Collective::all_reduce(8, vec![GpuId(0), GpuId(9)]);
        lower(&c, Algorithm::Ring, &sku, &topo, Precision::Fp16);
    }

    #[test]
    fn small_messages_are_latency_dominated() {
        let (sku, topo) = h100_node();
        let tiny = Collective::all_reduce(1 << 10, group(4));
        let op = lower(&tiny, Algorithm::Tree, &sku, &topo, Precision::Fp16);
        let ratio = op.isolated_busbw_gbs() * 1e9 / op.wire_rate_bytes_per_sec;
        assert!(
            ratio < 0.1,
            "tiny collectives cannot reach busbw, ratio {ratio}"
        );
    }
}
