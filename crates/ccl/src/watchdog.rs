//! NCCL-style watchdog semantics for stalled collectives.
//!
//! Real NCCL arms a watchdog per communicator: if a collective makes no
//! progress for `NCCL_TIMEOUT` (torch's `timeout=` on `init_process_group`),
//! the watchdog fires and — depending on `NCCL_ASYNC_ERROR_HANDLING` /
//! `TORCH_NCCL_ABORT_IN_DESTROY` era knobs — the job either aborts or the
//! framework tears the communicator down and rebuilds it on the surviving
//! devices. This module models that control loop analytically:
//!
//! * a per-collective **timeout** starts when the collective stops making
//!   progress (a link outage in the fault timeline),
//! * up to `max_retries` **retries** follow, spaced by exponential backoff
//!   (`backoff_base_s * 2^k`),
//! * on exhaustion the configured [`FailAction`] applies: **abort** the run
//!   and report, or **degrade** — re-lower the collective onto the
//!   surviving ring (excluding the dead link) after paying a communicator
//!   rebuild cost.
//!
//! Everything is closed-form over the outage window, so a fault timeline
//! fixed up front yields a deterministic verdict per stall — the property
//! the seeded fault scenarios rely on.

use crate::{try_lower, CclError, Collective, CommOp};
use olab_gpu::{GpuSku, Precision};
use olab_net::{Link, Topology};
use olab_sim::GpuId;

/// What to do when a collective exhausts its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Abort the run and surface a typed error (NCCL's default crash).
    Abort,
    /// Rebuild the communicator on the surviving topology and continue at
    /// the degraded rate.
    Degrade,
}

/// Watchdog configuration, mirroring NCCL's timeout/abort knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Seconds of no progress before the watchdog fires (`NCCL_TIMEOUT`).
    pub timeout_s: f64,
    /// Retries after the first timeout before giving up.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base_s * 2^k`.
    pub backoff_base_s: f64,
    /// Action on retry exhaustion.
    pub on_exhaustion: FailAction,
    /// Fixed communicator-rebuild cost on degradation, seconds.
    pub rebuild_base_s: f64,
    /// Per-rank communicator-rebuild cost (bootstrap is O(ranks)), seconds.
    pub rebuild_per_rank_s: f64,
}

impl WatchdogConfig {
    /// A degrading watchdog with the given timeout and default retry and
    /// rebuild costs.
    pub fn degrade(timeout_s: f64) -> Self {
        WatchdogConfig {
            timeout_s,
            max_retries: 3,
            backoff_base_s: timeout_s * 0.25,
            on_exhaustion: FailAction::Degrade,
            rebuild_base_s: timeout_s * 0.5,
            rebuild_per_rank_s: timeout_s * 0.05,
        }
    }

    /// An aborting watchdog (same schedule, crash on exhaustion).
    pub fn abort(timeout_s: f64) -> Self {
        WatchdogConfig {
            on_exhaustion: FailAction::Abort,
            ..Self::degrade(timeout_s)
        }
    }

    /// Total stalled seconds before the budget is exhausted: the first
    /// timeout plus, per retry, its backoff and another timeout.
    pub fn patience_s(&self) -> f64 {
        let mut t = self.timeout_s;
        for k in 0..self.max_retries {
            t += self.backoff_base_s * 2f64.powi(k as i32) + self.timeout_s;
        }
        t
    }

    /// Communicator rebuild cost for a group of `ranks`, seconds.
    pub fn rebuild_s(&self, ranks: usize) -> f64 {
        self.rebuild_base_s + self.rebuild_per_rank_s * ranks as f64
    }
}

/// The watchdog's resolution of one stall, with absolute times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatchdogVerdict {
    /// The outage ended inside the retry budget; progress resumes at `at`
    /// (the later of the recovery and the retry that observes it).
    Resumed {
        /// When progress resumes, seconds.
        at: f64,
        /// Retries spent before the successful attempt.
        retries: u32,
    },
    /// The budget ran out while the link was still down.
    Exhausted {
        /// When the final attempt timed out, seconds.
        give_up_at: f64,
        /// Retries spent (always `max_retries`).
        retries: u32,
    },
}

/// Adjudicates a stall that began at `stall_start` against an outage that
/// ends at `outage_end` (`None` = the link is dead for good).
pub fn adjudicate(
    stall_start: f64,
    outage_end: Option<f64>,
    cfg: &WatchdogConfig,
) -> WatchdogVerdict {
    let mut attempt_start = stall_start;
    for attempt in 0..=cfg.max_retries {
        let deadline = attempt_start + cfg.timeout_s;
        if let Some(end) = outage_end {
            if end <= deadline {
                return WatchdogVerdict::Resumed {
                    at: end.max(attempt_start),
                    retries: attempt,
                };
            }
        }
        attempt_start = deadline + cfg.backoff_base_s * 2f64.powi(attempt as i32);
    }
    WatchdogVerdict::Exhausted {
        give_up_at: stall_start + cfg.patience_s(),
        retries: cfg.max_retries,
    }
}

/// Re-lowers a collective onto the topology surviving a dead link: the
/// rebuilt ring excludes `dead`, so the wire rate drops by the topology's
/// surviving-bandwidth factor, one extra hop of latency is paid on the
/// rerouted segment, and a channel is retired.
///
/// # Errors
///
/// [`CclError::MissingLink`] when no bandwidth survives (e.g. the only
/// link of a two-GPU mesh died) — degradation is impossible and the caller
/// must abort.
pub fn relower_degraded(op: &CommOp, dead: Link, topology: &Topology) -> Result<CommOp, CclError> {
    let n = op.collective.group_size();
    let healthy = topology.ring_busbw_gbs(n);
    let degraded = topology.degraded_ring_busbw_gbs(n, dead);
    if degraded <= 0.0 || degraded.is_nan() {
        return Err(CclError::MissingLink(dead));
    }
    let mut out = op.clone();
    out.wire_rate_bytes_per_sec = op.wire_rate_bytes_per_sec * degraded / healthy;
    out.latency_s = op.latency_s + topology.latency_s();
    out.channels = op.channels.saturating_sub(1).max(1);
    Ok(out)
}

/// Re-lowers a collective onto an arbitrary surviving rank set — the
/// elastic shrink-and-continue transition, where a rank is evicted for
/// good and the communicator is rebuilt over whoever is left.
///
/// The *logical* buffer is conserved: the surviving group moves the same
/// `collective.bytes` the original group did (state is re-sharded, not
/// dropped), only the per-rank wire traffic and the schedule change with
/// the new group size. The returned op is a fresh lowering over
/// `survivors`, not a scaled copy, so latency steps, channel count, and
/// reduction FLOPs all reflect the shrunken world.
///
/// # Errors
///
/// [`CclError::GroupTooSmall`] when fewer than two distinct survivors
/// remain, [`CclError::NotPairwise`] when a point-to-point loses an
/// endpoint, [`CclError::GroupExceedsTopology`] when a survivor lies
/// outside the topology.
pub fn relower_surviving(
    op: &CommOp,
    survivors: &[GpuId],
    sku: &GpuSku,
    topology: &Topology,
    precision: Precision,
) -> Result<CommOp, CclError> {
    let shrunk = Collective::try_new(op.collective.kind, op.collective.bytes, survivors.to_vec())?;
    let out = try_lower(&shrunk, op.algorithm, sku, topology, precision)?;
    debug_assert_eq!(
        out.collective.bytes, op.collective.bytes,
        "re-lowering must conserve the logical buffer"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower, Algorithm, Collective};
    use olab_gpu::{GpuSku, Precision};
    use olab_sim::GpuId;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig::degrade(1.0)
    }

    #[test]
    fn patience_sums_timeouts_and_backoffs() {
        // 4 timeouts of 1 s + backoffs 0.25, 0.5, 1.0.
        assert!((cfg().patience_s() - 5.75).abs() < 1e-12);
        let single = WatchdogConfig {
            max_retries: 0,
            ..cfg()
        };
        assert!((single.patience_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_outages_resume_without_retries() {
        match adjudicate(10.0, Some(10.5), &cfg()) {
            WatchdogVerdict::Resumed { at, retries } => {
                assert!((at - 10.5).abs() < 1e-12);
                assert_eq!(retries, 0);
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn recovery_during_backoff_waits_for_the_retry() {
        // Outage ends at 11.1: after the first deadline (11.0) but inside
        // the 0.25 s backoff. The retry starting at 11.25 observes it.
        match adjudicate(10.0, Some(11.1), &cfg()) {
            WatchdogVerdict::Resumed { at, retries } => {
                assert!((at - 11.25).abs() < 1e-12);
                assert_eq!(retries, 1);
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn dead_links_exhaust_the_budget() {
        match adjudicate(10.0, None, &cfg()) {
            WatchdogVerdict::Exhausted {
                give_up_at,
                retries,
            } => {
                assert!((give_up_at - 15.75).abs() < 1e-12);
                assert_eq!(retries, 3);
            }
            v => panic!("unexpected {v:?}"),
        }
        // Long outages behave like dead links.
        assert!(matches!(
            adjudicate(10.0, Some(100.0), &cfg()),
            WatchdogVerdict::Exhausted { .. }
        ));
    }

    #[test]
    fn degraded_relowering_slows_the_ring_and_drops_a_channel() {
        let sku = GpuSku::h100();
        let topo = olab_net::Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        let ar = Collective::all_reduce(1 << 28, group);
        let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let dead = Link::new(GpuId(1), GpuId(2));
        let degraded = relower_degraded(&op, dead, &topo).unwrap();
        assert!(degraded.wire_rate_bytes_per_sec < op.wire_rate_bytes_per_sec);
        assert!(degraded.latency_s > op.latency_s);
        assert_eq!(degraded.channels, op.channels - 1);
        assert!(degraded.isolated_duration_s() > op.isolated_duration_s());
    }

    #[test]
    fn exactly_exhausted_budget_sits_on_the_resume_side_of_the_boundary() {
        // The final retry's deadline is stall_start + patience_s(). An
        // outage ending exactly there is observed by that attempt and
        // resumes; one ulp-scale nudge past it exhausts the budget.
        let cfg = cfg();
        let boundary = 10.0 + cfg.patience_s();
        match adjudicate(10.0, Some(boundary), &cfg) {
            WatchdogVerdict::Resumed { at, retries } => {
                assert!((at - boundary).abs() < 1e-12);
                assert_eq!(retries, cfg.max_retries);
            }
            v => panic!("exact boundary must resume, got {v:?}"),
        }
        match adjudicate(10.0, Some(boundary + 1e-9), &cfg) {
            WatchdogVerdict::Exhausted {
                give_up_at,
                retries,
            } => {
                assert!((give_up_at - boundary).abs() < 1e-12);
                assert_eq!(retries, cfg.max_retries);
            }
            v => panic!("past the boundary must exhaust, got {v:?}"),
        }
    }

    #[test]
    fn zero_retry_budget_gets_exactly_one_timeout() {
        let cfg = WatchdogConfig {
            max_retries: 0,
            ..cfg()
        };
        // No retries: the single attempt's deadline is the whole patience.
        match adjudicate(5.0, Some(6.0), &cfg) {
            WatchdogVerdict::Resumed { at, retries } => {
                assert!((at - 6.0).abs() < 1e-12);
                assert_eq!(retries, 0);
            }
            v => panic!("unexpected {v:?}"),
        }
        match adjudicate(5.0, Some(6.0 + 1e-9), &cfg) {
            WatchdogVerdict::Exhausted {
                give_up_at,
                retries,
            } => {
                assert!((give_up_at - 6.0).abs() < 1e-12);
                assert_eq!(retries, 0);
            }
            v => panic!("unexpected {v:?}"),
        }
        assert!(matches!(
            adjudicate(5.0, None, &cfg),
            WatchdogVerdict::Exhausted { retries: 0, .. }
        ));
    }

    #[test]
    fn boundary_verdicts_agree_serially_and_under_worker_fanout() {
        // The same exactly-exhausted adjudications, fanned across the
        // sweep worker pool: verdicts must be bitwise identical to the
        // serial pass regardless of parallelism.
        let cases: Vec<(u32, f64)> = (0..=4)
            .flat_map(|retries| {
                [-1e-9, 0.0, 1e-9]
                    .into_iter()
                    .map(move |nudge| (retries, nudge))
            })
            .collect();
        let verdict_of = |&(retries, nudge): &(u32, f64)| {
            let cfg = WatchdogConfig {
                max_retries: retries,
                ..WatchdogConfig::degrade(1.0)
            };
            adjudicate(10.0, Some(10.0 + cfg.patience_s() + nudge), &cfg)
        };
        let serial: Vec<WatchdogVerdict> = cases.iter().map(verdict_of).collect();
        let parallel = olab_grid::Pool::new(4).map(&cases, verdict_of);
        assert_eq!(serial, parallel);
        // Sanity: the nudge direction decides the verdict in every case.
        for (case, v) in cases.iter().zip(&serial) {
            match case.1 {
                n if n > 0.0 => assert!(matches!(v, WatchdogVerdict::Exhausted { .. })),
                _ => assert!(matches!(v, WatchdogVerdict::Resumed { .. })),
            }
        }
    }

    #[test]
    fn surviving_rank_relowering_conserves_the_logical_buffer() {
        let sku = GpuSku::h100();
        let topo = olab_net::Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        let ag = Collective::all_gather(3 << 20, group);
        let op = lower(&ag, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        // gpu2 died: rebuild over the other three.
        let survivors = vec![GpuId(0), GpuId(1), GpuId(3)];
        let shrunk = relower_surviving(&op, &survivors, &sku, &topo, Precision::Fp16).unwrap();
        assert_eq!(shrunk.collective.bytes, op.collective.bytes);
        assert_eq!(shrunk.collective.group, survivors);
        // Ring all-gather wire bytes are S(n-1)/n per rank: the total moved
        // over the fabric is S(n-1) — it changes with the group size, but
        // per-rank * ranks always reassembles it exactly.
        let total = |o: &CommOp| o.wire_bytes_per_rank * o.collective.group_size() as f64;
        let s = op.collective.bytes as f64;
        assert!((total(&op) - s * 3.0).abs() < 1e-6);
        assert!((total(&shrunk) - s * 2.0).abs() < 1e-6);
        // The shrunken schedule is a fresh lowering, not a scaled copy:
        // per-rank ring traffic is S(n-1)/n, which drops with the group.
        assert!(shrunk.wire_bytes_per_rank < op.wire_bytes_per_rank);
        assert!(shrunk.latency_s < op.latency_s, "fewer ring steps");
    }

    #[test]
    fn surviving_rank_relowering_rejects_degenerate_groups() {
        let sku = GpuSku::h100();
        let topo = olab_net::Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        let ar = Collective::all_reduce(1 << 20, group);
        let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        assert_eq!(
            relower_surviving(&op, &[GpuId(0)], &sku, &topo, Precision::Fp16),
            Err(CclError::GroupTooSmall { got: 1 })
        );
        assert!(matches!(
            relower_surviving(&op, &[GpuId(0), GpuId(9)], &sku, &topo, Precision::Fp16),
            Err(CclError::GroupExceedsTopology { .. })
        ));
        let p2p = Collective::p2p(1 << 20, GpuId(0), GpuId(1));
        let p2p_op = lower(&p2p, Algorithm::Direct, &sku, &topo, Precision::Fp16);
        assert_eq!(
            relower_surviving(
                &p2p_op,
                &[GpuId(0), GpuId(2), GpuId(3)],
                &sku,
                &topo,
                Precision::Fp16
            ),
            Err(CclError::NotPairwise { got: 3 })
        );
    }

    #[test]
    fn two_gpu_mesh_cannot_degrade() {
        let sku = GpuSku::mi250();
        let topo = olab_net::Topology::full_mesh(2, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let pair = Collective::all_reduce(1 << 20, vec![GpuId(0), GpuId(1)]);
        let op = lower(&pair, Algorithm::Ring, &sku, &topo, Precision::Fp16);
        let dead = Link::new(GpuId(0), GpuId(1));
        assert_eq!(
            relower_degraded(&op, dead, &topo),
            Err(CclError::MissingLink(dead))
        );
    }
}
