//! Typed errors for malformed or unservable collectives.
//!
//! Construction and lowering historically panicked on malformed configs;
//! the panicking entry points remain (tests and quick scripts rely on
//! them) but now delegate to `try_` variants returning these errors, so
//! robust callers — the experiment validator, the fault layer's degraded
//! re-lowering — can route failures through `ExperimentError` instead of
//! unwinding.

use olab_net::Link;
use olab_sim::GpuId;
use std::fmt;

/// Why a collective could not be constructed or lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum CclError {
    /// Fewer than two distinct ranks after deduplication.
    GroupTooSmall {
        /// Distinct ranks supplied.
        got: usize,
    },
    /// A point-to-point group that is not exactly two ranks.
    NotPairwise {
        /// Distinct ranks supplied.
        got: usize,
    },
    /// The collective moves no data.
    ZeroBytes,
    /// A rank lies outside the topology.
    GroupExceedsTopology {
        /// The offending rank.
        rank: GpuId,
        /// Endpoints in the topology.
        n_gpus: usize,
    },
    /// No surviving path after excluding a dead link (graceful degradation
    /// is impossible; the collective must abort).
    MissingLink(Link),
}

impl fmt::Display for CclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CclError::GroupTooSmall { got } => {
                write!(f, "collective group needs at least 2 ranks (got {got})")
            }
            CclError::NotPairwise { got } => {
                write!(f, "point-to-point takes exactly 2 ranks (got {got})")
            }
            CclError::ZeroBytes => write!(f, "collective moves zero bytes"),
            CclError::GroupExceedsTopology { rank, n_gpus } => write!(
                f,
                "collective group exceeds topology (rank gpu{} outside {n_gpus} GPUs)",
                rank.index()
            ),
            CclError::MissingLink(link) => {
                write!(f, "no surviving path for collective: link {link} is dead")
            }
        }
    }
}

impl std::error::Error for CclError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_keep_the_historical_panic_phrases() {
        // `Collective::new` / `lower` panic with `Display` of these errors;
        // downstream `should_panic(expected = ...)` tests match substrings.
        assert!(CclError::GroupTooSmall { got: 1 }
            .to_string()
            .contains("at least 2 ranks"));
        assert!(CclError::NotPairwise { got: 3 }
            .to_string()
            .contains("exactly 2 ranks"));
        assert!(CclError::GroupExceedsTopology {
            rank: GpuId(9),
            n_gpus: 4
        }
        .to_string()
        .contains("collective group exceeds topology"));
        assert!(CclError::MissingLink(Link::new(GpuId(0), GpuId(1)))
            .to_string()
            .contains("gpu0<->gpu1"));
    }
}
