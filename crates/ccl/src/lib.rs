//! # olab-ccl — collective communication library model
//!
//! An NCCL/RCCL-style collectives model: given a logical collective
//! (all-reduce, all-gather, reduce-scatter, broadcast, all-to-all, or a
//! point-to-point send/recv), an algorithm (ring/tree/direct), the GPU SKU
//! and the node topology, it produces a [`CommOp`] describing what the
//! collective *costs*:
//!
//! * bytes on the wire per rank and the achievable bus bandwidth,
//! * step + launch latency,
//! * HBM traffic amplification (ring steps stage through device memory),
//! * reduction FLOPs (all-reduce and reduce-scatter do math!),
//! * SM occupancy of the channel kernels.
//!
//! The last three are the contention hooks: when a `CommOp` runs while a
//! compute kernel is resident, the machine model in `olab-core` charges the
//! kernel for the stolen SMs, the shared HBM bandwidth, and the extra power.
//!
//! ```rust
//! use olab_ccl::{lower, Algorithm, Collective};
//! use olab_gpu::{GpuSku, Precision};
//! use olab_net::Topology;
//! use olab_sim::GpuId;
//!
//! let sku = GpuSku::h100();
//! let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
//! let group: Vec<GpuId> = (0..4).map(GpuId).collect();
//! let ar = Collective::all_reduce(1 << 30, group); // 1 GiB, the Fig. 8 microbenchmark
//! let op = lower(&ar, Algorithm::Ring, &sku, &topo, Precision::Fp16);
//! assert!(op.isolated_duration_s() > 1e-3, "a 1 GiB all-reduce takes milliseconds");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod channels;
mod collective;
mod error;
mod lowering;
mod watchdog;

pub use algorithm::{wire_bytes_per_rank, Algorithm};
pub use channels::channel_count;
pub use collective::{Collective, CollectiveKind};
pub use error::CclError;
pub use lowering::{lower, try_lower, CommOp};
pub use watchdog::{
    adjudicate, relower_degraded, relower_surviving, FailAction, WatchdogConfig, WatchdogVerdict,
};
