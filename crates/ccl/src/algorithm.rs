//! Collective algorithms and their bandwidth/latency characteristics.

use crate::CollectiveKind;
use std::fmt;

/// How a collective is scheduled over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Bandwidth-optimal chunked ring (NCCL's default for large messages).
    Ring,
    /// Latency-optimal binary tree (NCCL's default for small messages).
    Tree,
    /// Direct copy between endpoints (point-to-point, small broadcast).
    Direct,
    /// Two-level hierarchical schedule for node-spanning groups
    /// (reduce-scatter intra-node, all-reduce inter-node, all-gather
    /// intra-node): only `1/gpus_per_node` of the payload crosses each NIC.
    Hierarchical,
}

impl Algorithm {
    /// The algorithm a NCCL-like library would choose automatically:
    /// trees under the crossover size, rings above, direct for
    /// point-to-point.
    pub fn auto(kind: CollectiveKind, bytes: u64, _group_size: usize) -> Algorithm {
        const TREE_CROSSOVER_BYTES: u64 = 1 << 20; // 1 MiB
        match kind {
            CollectiveKind::PointToPoint => Algorithm::Direct,
            CollectiveKind::AllToAll => Algorithm::Direct,
            CollectiveKind::Broadcast => Algorithm::Ring,
            CollectiveKind::AllReduce
            | CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter => {
                if bytes < TREE_CROSSOVER_BYTES {
                    Algorithm::Tree
                } else {
                    Algorithm::Ring
                }
            }
        }
    }

    /// Topology-aware automatic selection: like [`Algorithm::auto`], but
    /// upgrades large node-spanning reductions to the hierarchical schedule
    /// on two-level fabrics (what NCCL does with its inter/intra channels).
    pub fn auto_for(
        kind: CollectiveKind,
        bytes: u64,
        group: &[olab_sim::GpuId],
        topology: &olab_net::Topology,
    ) -> Algorithm {
        let base = Self::auto(kind, bytes, group.len());
        let spans_nodes = group
            .windows(2)
            .any(|w| topology.node_of(w[0]) != topology.node_of(w[1]));
        let reduces_or_gathers = matches!(
            kind,
            CollectiveKind::AllReduce | CollectiveKind::AllGather | CollectiveKind::ReduceScatter
        );
        if base == Algorithm::Ring && spans_nodes && reduces_or_gathers {
            Algorithm::Hierarchical
        } else {
            base
        }
    }

    /// Number of serialized fabric steps (each paying one hop latency).
    pub fn latency_steps(self, kind: CollectiveKind, group_size: usize) -> u32 {
        let n = group_size as u32;
        match (self, kind) {
            (_, CollectiveKind::PointToPoint) => 1,
            (Algorithm::Ring, CollectiveKind::AllReduce) => 2 * (n - 1),
            (Algorithm::Ring, _) => n - 1,
            (Algorithm::Tree, CollectiveKind::AllReduce) => {
                2 * n.next_power_of_two().trailing_zeros().max(1)
            }
            (Algorithm::Tree, _) => n.next_power_of_two().trailing_zeros().max(1),
            (Algorithm::Direct, CollectiveKind::AllToAll) => n - 1,
            (Algorithm::Direct, _) => 1,
            // Intra RS + inter AR + intra AG, each latency-pipelined.
            (Algorithm::Hierarchical, _) => 2 * (n - 1).min(8) + 2,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Ring => write!(f, "ring"),
            Algorithm::Tree => write!(f, "tree"),
            Algorithm::Direct => write!(f, "direct"),
            Algorithm::Hierarchical => write!(f, "hierarchical"),
        }
    }
}

/// Bytes each rank must move over the wire (send side) for a collective of
/// logical size `bytes` over `n` ranks.
///
/// These are the standard alpha-beta model volumes:
///
/// | collective      | ring              | tree        |
/// |-----------------|-------------------|-------------|
/// | all-reduce      | `2 S (n-1)/n`     | `2 S`       |
/// | all-gather      | `S (n-1)/n`       | `S (n-1)/n` |
/// | reduce-scatter  | `S (n-1)/n`       | `S (n-1)/n` |
/// | broadcast       | `S`               | `S`         |
/// | all-to-all      | `S (n-1)/n`       | —           |
/// | point-to-point  | `S`               | —           |
pub fn wire_bytes_per_rank(
    kind: CollectiveKind,
    algorithm: Algorithm,
    bytes: u64,
    n: usize,
) -> f64 {
    let s = bytes as f64;
    let n = n as f64;
    let shard = s * (n - 1.0) / n;
    match kind {
        CollectiveKind::AllReduce => match algorithm {
            Algorithm::Ring | Algorithm::Direct => 2.0 * shard,
            Algorithm::Tree => 2.0 * s,
            // Intra-node phases move 2·S·(g-1)/g locally; the wire figure
            // reported here is the per-rank total (NIC traffic is priced by
            // the lowering via the topology's per-phase rates).
            Algorithm::Hierarchical => 2.0 * shard,
        },
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => shard,
        CollectiveKind::Broadcast => s,
        CollectiveKind::AllToAll => shard,
        CollectiveKind::PointToPoint => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_picks_tree_for_small_and_ring_for_large() {
        assert_eq!(
            Algorithm::auto(CollectiveKind::AllReduce, 1 << 10, 4),
            Algorithm::Tree
        );
        assert_eq!(
            Algorithm::auto(CollectiveKind::AllReduce, 1 << 28, 4),
            Algorithm::Ring
        );
        assert_eq!(
            Algorithm::auto(CollectiveKind::PointToPoint, 1 << 28, 2),
            Algorithm::Direct
        );
    }

    #[test]
    fn ring_all_reduce_moves_2s_nm1_over_n() {
        let v = wire_bytes_per_rank(CollectiveKind::AllReduce, Algorithm::Ring, 1000, 4);
        assert!((v - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn all_gather_and_reduce_scatter_move_half_of_all_reduce() {
        let ar = wire_bytes_per_rank(CollectiveKind::AllReduce, Algorithm::Ring, 1 << 20, 8);
        let ag = wire_bytes_per_rank(CollectiveKind::AllGather, Algorithm::Ring, 1 << 20, 8);
        let rs = wire_bytes_per_rank(CollectiveKind::ReduceScatter, Algorithm::Ring, 1 << 20, 8);
        assert!((ar - 2.0 * ag).abs() < 1e-6);
        assert_eq!(ag, rs);
    }

    #[test]
    fn tree_all_reduce_moves_more_bytes_than_ring() {
        let ring = wire_bytes_per_rank(CollectiveKind::AllReduce, Algorithm::Ring, 1 << 20, 8);
        let tree = wire_bytes_per_rank(CollectiveKind::AllReduce, Algorithm::Tree, 1 << 20, 8);
        assert!(tree > ring);
    }

    #[test]
    fn tree_has_logarithmic_latency_steps() {
        assert_eq!(
            Algorithm::Tree.latency_steps(CollectiveKind::AllGather, 8),
            3
        );
        assert_eq!(
            Algorithm::Ring.latency_steps(CollectiveKind::AllGather, 8),
            7
        );
        assert_eq!(
            Algorithm::Ring.latency_steps(CollectiveKind::AllReduce, 4),
            6
        );
        assert_eq!(
            Algorithm::Direct.latency_steps(CollectiveKind::PointToPoint, 2),
            1
        );
    }

    #[test]
    fn wire_bytes_shrink_with_group_size_for_sharded_collectives() {
        let small = wire_bytes_per_rank(CollectiveKind::AllGather, Algorithm::Ring, 1 << 20, 2);
        let large = wire_bytes_per_rank(CollectiveKind::AllGather, Algorithm::Ring, 1 << 20, 16);
        assert!(large > small, "(n-1)/n grows with n");
        assert!(large < (1 << 20) as f64);
    }
}
