//! Channel-count heuristic.
//!
//! NCCL and RCCL split each collective across several *channels*; each
//! channel is a persistent kernel occupying SMs/CUs for the lifetime of the
//! collective. More channels extract more bandwidth from the fabric but
//! steal more compute capacity from concurrent kernels — the first-order SM
//! contention mechanism of the paper.

use olab_gpu::Vendor;

/// Channels a NCCL/RCCL-like library would use for a message of
/// `wire_bytes` on wire, per rank.
///
/// The heuristic matches the libraries' observable behaviour: one channel
/// per ~8 MiB of payload, at least one, capped per vendor (NCCL tops out at
/// 16 usable channels per collective on these nodes; RCCL uses fewer, wider
/// workgroups).
pub fn channel_count(vendor: Vendor, wire_bytes: f64) -> u32 {
    let per_channel = 8.0 * (1 << 20) as f64;
    let want = (wire_bytes / per_channel).ceil().max(1.0) as u32;
    let cap = match vendor {
        Vendor::Nvidia => 16,
        Vendor::Amd => 8,
    };
    want.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_messages_use_one_channel() {
        assert_eq!(channel_count(Vendor::Nvidia, 1024.0), 1);
        assert_eq!(channel_count(Vendor::Amd, 0.0), 1);
    }

    #[test]
    fn channel_count_grows_with_message_size() {
        let small = channel_count(Vendor::Nvidia, 8.0 * 1024.0 * 1024.0);
        let large = channel_count(Vendor::Nvidia, 64.0 * 1024.0 * 1024.0);
        assert!(large > small);
    }

    #[test]
    fn vendor_caps_apply() {
        let huge = 10.0 * (1u64 << 30) as f64;
        assert_eq!(channel_count(Vendor::Nvidia, huge), 16);
        assert_eq!(channel_count(Vendor::Amd, huge), 8);
    }
}
