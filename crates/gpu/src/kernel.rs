//! Analytic kernel models: FLOPs, memory traffic, and achievable efficiency.

use crate::{Datapath, Precision};
use std::fmt;

/// The kernel shapes that dominate transformer training, each with an
/// analytic FLOP and byte count.
///
/// The byte counts assume each operand is read/written once from HBM (tiled
/// GEMMs reuse operands through shared memory/L2, so this is the standard
/// first-order model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense matrix multiply `C[m,n] += A[m,k] * B[k,n]`.
    Gemm {
        /// Rows of `A`/`C`.
        m: u64,
        /// Columns of `B`/`C`.
        n: u64,
        /// Inner dimension.
        k: u64,
    },
    /// Batched GEMM (attention score/context products).
    BatchedGemm {
        /// Number of independent GEMMs.
        batch: u64,
        /// Rows per GEMM.
        m: u64,
        /// Columns per GEMM.
        n: u64,
        /// Inner dimension per GEMM.
        k: u64,
    },
    /// Elementwise map over `elems` elements with `flops_per_elem` work and
    /// `streams` operand tensors moved (read + write counted separately).
    Elementwise {
        /// Number of elements.
        elems: u64,
        /// Arithmetic per element.
        flops_per_elem: u64,
        /// Number of tensor-sized operands streamed through HBM.
        streams: u64,
    },
    /// Row-wise softmax over a `[rows, cols]` tensor.
    Softmax {
        /// Independent rows.
        rows: u64,
        /// Elements per row.
        cols: u64,
    },
    /// Layer normalization over `elems` activations.
    LayerNorm {
        /// Number of elements.
        elems: u64,
    },
    /// Embedding-table gather for `tokens` tokens of width `hidden`.
    Embedding {
        /// Tokens looked up.
        tokens: u64,
        /// Embedding width.
        hidden: u64,
    },
    /// Adam optimizer update over `params` parameters (mixed precision:
    /// FP32 master weights + moments, FP16 weights/grads).
    AdamStep {
        /// Parameters updated by this rank.
        params: u64,
    },
    /// Elementwise reduction of two buffers (the math inside reduce-scatter /
    /// all-reduce collectives).
    CommReduction {
        /// Elements combined.
        elems: u64,
    },
}

impl KernelKind {
    /// Convenience constructor for a plain GEMM.
    pub fn gemm(m: u64, n: u64, k: u64) -> Self {
        KernelKind::Gemm { m, n, k }
    }

    /// Floating-point operations performed.
    pub fn flops(&self) -> f64 {
        match *self {
            KernelKind::Gemm { m, n, k } => 2.0 * m as f64 * n as f64 * k as f64,
            KernelKind::BatchedGemm { batch, m, n, k } => {
                2.0 * batch as f64 * m as f64 * n as f64 * k as f64
            }
            KernelKind::Elementwise {
                elems,
                flops_per_elem,
                ..
            } => elems as f64 * flops_per_elem as f64,
            KernelKind::Softmax { rows, cols } => 5.0 * rows as f64 * cols as f64,
            KernelKind::LayerNorm { elems } => 8.0 * elems as f64,
            KernelKind::Embedding { tokens, hidden } => tokens as f64 * hidden as f64,
            KernelKind::AdamStep { params } => 12.0 * params as f64,
            KernelKind::CommReduction { elems } => elems as f64,
        }
    }

    /// HBM bytes moved at the given element precision.
    pub fn bytes(&self, precision: Precision) -> f64 {
        let eb = precision.bytes() as f64;
        match *self {
            KernelKind::Gemm { m, n, k } => {
                eb * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64)
            }
            KernelKind::BatchedGemm { batch, m, n, k } => {
                eb * batch as f64
                    * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64)
            }
            KernelKind::Elementwise { elems, streams, .. } => eb * elems as f64 * streams as f64,
            KernelKind::Softmax { rows, cols } => 2.0 * eb * rows as f64 * cols as f64,
            KernelKind::LayerNorm { elems } => 2.0 * eb * elems as f64,
            KernelKind::Embedding { tokens, hidden } => 2.0 * eb * tokens as f64 * hidden as f64,
            // Adam mixed precision: read grad(2) + p16(2) + m(4) + v(4) +
            // master(4); write p16(2) + m(4) + v(4) + master(4) = 30 B/param,
            // independent of activation precision.
            KernelKind::AdamStep { params } => 30.0 * params as f64,
            // Read two operands, write one.
            KernelKind::CommReduction { elems } => 3.0 * eb * elems as f64,
        }
    }

    /// Arithmetic intensity in FLOP/byte at a precision.
    pub fn intensity(&self, precision: Precision) -> f64 {
        self.flops() / self.bytes(precision).max(1.0)
    }

    /// Whether this kernel can use the tensor/matrix-core datapath.
    pub fn uses_matrix_math(&self) -> bool {
        matches!(
            self,
            KernelKind::Gemm { .. } | KernelKind::BatchedGemm { .. }
        )
    }

    /// Achievable fraction of peak FLOP throughput for this kernel on the
    /// given datapath. GEMMs asymptote to a high fraction of peak as they
    /// grow (cuBLAS-like behaviour); small kernels are launch/tiling-bound.
    pub fn flop_efficiency(&self, datapath: Datapath) -> f64 {
        match self {
            KernelKind::Gemm { .. } | KernelKind::BatchedGemm { .. } => {
                let base = match datapath {
                    Datapath::Vector => 0.85,
                    Datapath::TensorCore => 0.72,
                };
                // Ramp with problem size: half-efficiency point at 2 GFLOP.
                let work = self.flops();
                let half = 2.0e9;
                base * work / (work + half)
            }
            // Non-GEMM kernels run on the vector path and are memory-bound in
            // practice; give them modest compute efficiency.
            _ => 0.5,
        }
    }

    /// Achievable fraction of peak HBM bandwidth.
    pub fn bandwidth_efficiency(&self) -> f64 {
        match self {
            KernelKind::Gemm { .. } | KernelKind::BatchedGemm { .. } => 0.85,
            KernelKind::Embedding { .. } => 0.55,
            KernelKind::AdamStep { .. } => 0.80,
            _ => 0.75,
        }
    }

    /// Short kernel-class name for traces.
    pub fn class(&self) -> &'static str {
        match self {
            KernelKind::Gemm { .. } => "gemm",
            KernelKind::BatchedGemm { .. } => "bgemm",
            KernelKind::Elementwise { .. } => "eltwise",
            KernelKind::Softmax { .. } => "softmax",
            KernelKind::LayerNorm { .. } => "layernorm",
            KernelKind::Embedding { .. } => "embedding",
            KernelKind::AdamStep { .. } => "adam",
            KernelKind::CommReduction { .. } => "reduce",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KernelKind::Gemm { m, n, k } => write!(f, "gemm[{m}x{n}x{k}]"),
            KernelKind::BatchedGemm { batch, m, n, k } => {
                write!(f, "bgemm[{batch}x({m}x{n}x{k})]")
            }
            other => write!(f, "{}", other.class()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flop_count_is_2mnk() {
        let g = KernelKind::gemm(128, 256, 512);
        assert_eq!(g.flops(), 2.0 * 128.0 * 256.0 * 512.0);
    }

    #[test]
    fn batched_gemm_scales_with_batch() {
        let one = KernelKind::gemm(64, 64, 64);
        let many = KernelKind::BatchedGemm {
            batch: 8,
            m: 64,
            n: 64,
            k: 64,
        };
        assert_eq!(many.flops(), 8.0 * one.flops());
        assert_eq!(
            many.bytes(Precision::Fp16),
            8.0 * one.bytes(Precision::Fp16)
        );
    }

    #[test]
    fn halving_precision_halves_gemm_bytes() {
        let g = KernelKind::gemm(100, 100, 100);
        assert_eq!(g.bytes(Precision::Fp32), 2.0 * g.bytes(Precision::Fp16));
    }

    #[test]
    fn adam_bytes_are_precision_independent() {
        let k = KernelKind::AdamStep { params: 1000 };
        assert_eq!(k.bytes(Precision::Fp16), k.bytes(Precision::Fp32));
        assert_eq!(k.bytes(Precision::Fp32), 30_000.0);
    }

    #[test]
    fn large_gemms_have_high_intensity() {
        let big = KernelKind::gemm(4096, 4096, 4096);
        assert!(big.intensity(Precision::Fp16) > 500.0);
        let ew = KernelKind::Elementwise {
            elems: 1 << 20,
            flops_per_elem: 1,
            streams: 2,
        };
        assert!(ew.intensity(Precision::Fp16) < 1.0);
    }

    #[test]
    fn efficiency_ramps_with_gemm_size() {
        let small = KernelKind::gemm(64, 64, 64);
        let big = KernelKind::gemm(8192, 8192, 8192);
        assert!(
            small.flop_efficiency(Datapath::TensorCore) < big.flop_efficiency(Datapath::TensorCore)
        );
        assert!(big.flop_efficiency(Datapath::TensorCore) > 0.7);
    }

    #[test]
    fn only_matrix_kernels_use_matrix_math() {
        assert!(KernelKind::gemm(1, 1, 1).uses_matrix_math());
        assert!(!KernelKind::LayerNorm { elems: 10 }.uses_matrix_math());
    }

    #[test]
    fn display_includes_shape() {
        assert_eq!(KernelKind::gemm(2, 3, 4).to_string(), "gemm[2x3x4]");
        assert_eq!(KernelKind::LayerNorm { elems: 1 }.to_string(), "layernorm");
    }
}
