//! Numeric precisions and execution datapaths.

use std::fmt;

/// Numeric format used by compute kernels.
///
/// The paper's Section V-C studies FP32 vs. FP16 (Figure 10) and the TF32
/// tensor-core path (Figure 11). BF16 is included for completeness — the
/// related-work section discusses it — and behaves like FP16 in the
/// performance model (same width, same tensor-core throughput class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE 754 single precision.
    Fp32,
    /// NVIDIA TensorFloat-32: FP32 range, 10-bit mantissa, tensor-core only.
    Tf32,
    /// IEEE 754 half precision.
    Fp16,
    /// bfloat16.
    Bf16,
}

impl Precision {
    /// All precisions, in declaration order.
    pub const ALL: [Precision; 4] = [
        Precision::Fp32,
        Precision::Tf32,
        Precision::Fp16,
        Precision::Bf16,
    ];

    /// Storage width of one element in bytes.
    ///
    /// TF32 is a compute format: tensors are stored as FP32 (4 bytes) and
    /// rounded inside the tensor core.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Fp16 | Precision::Bf16 => 2,
        }
    }

    /// Whether this format only exists on the tensor/matrix-core datapath.
    pub fn requires_tensor_core(self) -> bool {
        matches!(self, Precision::Tf32)
    }

    /// Whether this is a 16-bit format.
    pub fn is_half(self) -> bool {
        self.bytes() == 2
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp32 => write!(f, "FP32"),
            Precision::Tf32 => write!(f, "TF32"),
            Precision::Fp16 => write!(f, "FP16"),
            Precision::Bf16 => write!(f, "BF16"),
        }
    }
}

/// Which hardware datapath executes matrix math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Datapath {
    /// General-purpose CUDA/stream cores.
    Vector,
    /// NVIDIA Tensor Cores / AMD Matrix Cores.
    TensorCore,
}

impl Datapath {
    /// All datapaths, in declaration order.
    pub const ALL: [Datapath; 2] = [Datapath::Vector, Datapath::TensorCore];
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datapath::Vector => write!(f, "vector"),
            Datapath::TensorCore => write!(f, "tensor-core"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_formats() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Tf32.bytes(), 4, "TF32 stores as FP32");
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Bf16.bytes(), 2);
    }

    #[test]
    fn tf32_is_tensor_core_only() {
        assert!(Precision::Tf32.requires_tensor_core());
        assert!(!Precision::Fp32.requires_tensor_core());
        assert!(!Precision::Fp16.requires_tensor_core());
    }

    #[test]
    fn half_formats_are_classified() {
        assert!(Precision::Fp16.is_half());
        assert!(Precision::Bf16.is_half());
        assert!(!Precision::Fp32.is_half());
    }

    #[test]
    fn display_is_uppercase_format_names() {
        assert_eq!(Precision::Tf32.to_string(), "TF32");
        assert_eq!(Datapath::TensorCore.to_string(), "tensor-core");
    }
}
