//! Roofline timing for kernels running in isolation.
//!
//! The machine model in `olab-core` re-derives these quantities each epoch
//! (with contention applied); this module provides the isolated baseline and
//! the demand decomposition both share.

use crate::{Datapath, GpuSku, KernelKind, Precision};

/// Demand decomposition of one kernel on one SKU: the inputs to both the
/// isolated roofline and the contended rate computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDemand {
    /// Total floating-point work.
    pub flops: f64,
    /// Total HBM traffic in bytes.
    pub bytes: f64,
    /// Achievable FLOP/s at full frequency with no contention.
    pub flops_per_sec: f64,
    /// Achievable HBM bytes/s with no contention.
    pub bytes_per_sec: f64,
    /// Fixed launch/dispatch overhead in seconds.
    pub launch_s: f64,
    /// Whether the kernel runs on the tensor/matrix datapath.
    pub on_tensor_core: bool,
}

impl KernelDemand {
    /// Time the FLOP side needs at a frequency factor (relative clock).
    pub fn compute_time(&self, freq_factor: f64) -> f64 {
        self.flops / (self.flops_per_sec * freq_factor.max(1e-6))
    }

    /// Time the memory side needs given an available bandwidth fraction.
    pub fn memory_time(&self, bw_fraction: f64) -> f64 {
        self.bytes / (self.bytes_per_sec * bw_fraction.max(1e-6))
    }

    /// Roofline duration at the given frequency and bandwidth fractions.
    pub fn duration(&self, freq_factor: f64, bw_fraction: f64) -> f64 {
        self.compute_time(freq_factor)
            .max(self.memory_time(bw_fraction))
            + self.launch_s
    }

    /// Whether the kernel is compute-bound at full frequency and bandwidth.
    pub fn compute_bound(&self) -> bool {
        self.compute_time(1.0) >= self.memory_time(1.0)
    }

    /// Unconstrained HBM bandwidth demand in bytes/s: the rate the kernel
    /// would stream at if only the FLOP side limited it, capped at its
    /// achievable bandwidth.
    pub fn bandwidth_demand(&self) -> f64 {
        let span = self.compute_time(1.0).max(1e-15);
        (self.bytes / span).min(self.bytes_per_sec)
    }
}

/// Launch overhead per kernel, seconds. Real stacks pay 3–10 us per launch;
/// CUDA graphs / HIP graphs reduce it, so we sit at the low end.
pub const LAUNCH_OVERHEAD_S: f64 = 3.0e-6;

/// Decomposes a kernel into its resource demands on a SKU.
///
/// TF32 is coerced to the tensor-core path (it does not exist elsewhere);
/// non-matrix kernels are coerced to the vector path.
pub fn demand(
    kernel: &KernelKind,
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
) -> KernelDemand {
    let effective_path = if !kernel.uses_matrix_math() {
        Datapath::Vector
    } else if precision.requires_tensor_core() {
        Datapath::TensorCore
    } else {
        datapath
    };
    let peak = sku.peak_tflops(precision, effective_path) * 1e12;
    let flop_eff = kernel.flop_efficiency(effective_path);
    let bw_eff = kernel.bandwidth_efficiency();
    KernelDemand {
        flops: kernel.flops(),
        bytes: kernel.bytes(precision),
        flops_per_sec: peak * flop_eff,
        bytes_per_sec: sku.mem_bw_gbs * 1e9 * bw_eff,
        launch_s: LAUNCH_OVERHEAD_S,
        on_tensor_core: effective_path == Datapath::TensorCore && kernel.uses_matrix_math(),
    }
}

/// Isolated execution time of a kernel on a SKU, in seconds.
///
/// `freq_factor` scales the core clock (1.0 = boost clock); memory bandwidth
/// is clock-independent, matching the separate HBM clock domain on real
/// parts.
pub fn isolated_duration(
    kernel: &KernelKind,
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
    freq_factor: f64,
) -> f64 {
    demand(kernel, sku, precision, datapath).duration(freq_factor, 1.0)
}

/// Sum of isolated execution times over a batch of kernels, in seconds.
///
/// Equivalent to summing [`isolated_duration`] kernel by kernel (the
/// arithmetic is identical, so the result matches bit-for-bit), but hoists
/// the SKU peak lookups out of the loop: the effective datapath of each
/// kernel is one of two choices, so the FLOP peaks are resolved once per
/// batch instead of once per kernel. Timeline builders that price hundreds
/// of identical-shape kernels per layer go through this.
pub fn isolated_total_duration(
    kernels: &[KernelKind],
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
    freq_factor: f64,
) -> f64 {
    // Index by Datapath: [Vector, TensorCore].
    let peaks = [
        sku.peak_tflops(precision, Datapath::Vector) * 1e12,
        sku.peak_tflops(precision, Datapath::TensorCore) * 1e12,
    ];
    let peak_bytes = sku.mem_bw_gbs * 1e9;
    let freq = freq_factor.max(1e-6);
    let mut total = 0.0;
    for kernel in kernels {
        let effective_path = if !kernel.uses_matrix_math() {
            Datapath::Vector
        } else if precision.requires_tensor_core() {
            Datapath::TensorCore
        } else {
            datapath
        };
        let peak = match effective_path {
            Datapath::Vector => peaks[0],
            Datapath::TensorCore => peaks[1],
        };
        let flops_per_sec = peak * kernel.flop_efficiency(effective_path);
        let bytes_per_sec = peak_bytes * kernel.bandwidth_efficiency();
        let compute_time = kernel.flops() / (flops_per_sec * freq);
        let memory_time = kernel.bytes(precision) / bytes_per_sec;
        total += compute_time.max(memory_time) + LAUNCH_OVERHEAD_S;
    }
    total
}

/// A hard lower bound on a kernel's execution time: the roofline evaluated
/// at *datasheet* peaks — full boost clock, no efficiency derating, no
/// launch overhead. No contention model, DVFS governor, or efficiency
/// calibration can legitimately produce a faster kernel, which makes this
/// the anchor the conformance oracle checks simulated timings against.
pub fn lower_bound_duration(
    kernel: &KernelKind,
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
) -> f64 {
    let d = demand(kernel, sku, precision, datapath);
    let effective_path = if !kernel.uses_matrix_math() {
        Datapath::Vector
    } else if precision.requires_tensor_core() {
        Datapath::TensorCore
    } else {
        datapath
    };
    let peak_flops = sku.peak_tflops(precision, effective_path) * 1e12;
    let peak_bytes = sku.mem_bw_gbs * 1e9;
    (d.flops / peak_flops).max(d.bytes / peak_bytes)
}

/// The machine-balance point: the arithmetic intensity (FLOP/byte) at
/// which a kernel transitions from memory-bound to compute-bound on this
/// SKU/precision/datapath, at nominal efficiencies.
pub fn machine_balance(sku: &GpuSku, precision: Precision, datapath: Datapath) -> f64 {
    sku.peak_tflops(precision, datapath) * 1e12 / (sku.mem_bw_gbs * 1e9)
}

/// Points of the classic roofline curve: attainable GFLOP/s as a function
/// of arithmetic intensity, sampled log-uniformly over `[lo, hi]` FLOP/byte.
pub fn roofline_curve(
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
    lo: f64,
    hi: f64,
    points: usize,
) -> Vec<(f64, f64)> {
    assert!(lo > 0.0 && hi > lo && points >= 2, "invalid sweep");
    let peak = sku.peak_tflops(precision, datapath) * 1e3; // GFLOP/s
    let bw = sku.mem_bw_gbs; // GB/s
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let intensity = lo * (hi / lo).powf(t);
            (intensity, (intensity * bw).min(peak))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_gemm() -> KernelKind {
        KernelKind::gemm(8192, 8192, 8192)
    }

    #[test]
    fn tensor_core_is_faster_for_large_gemms() {
        let h100 = GpuSku::h100();
        let tv = isolated_duration(&big_gemm(), &h100, Precision::Fp32, Datapath::Vector, 1.0);
        let tt = isolated_duration(
            &big_gemm(),
            &h100,
            Precision::Tf32,
            Datapath::TensorCore,
            1.0,
        );
        assert!(tt < tv, "tensor core {tt} should beat vector {tv}");
    }

    #[test]
    fn fp16_is_faster_than_fp32_on_tensor_cores() {
        let h100 = GpuSku::h100();
        let t32 = isolated_duration(
            &big_gemm(),
            &h100,
            Precision::Tf32,
            Datapath::TensorCore,
            1.0,
        );
        let t16 = isolated_duration(
            &big_gemm(),
            &h100,
            Precision::Fp16,
            Datapath::TensorCore,
            1.0,
        );
        assert!(t16 < t32);
    }

    #[test]
    fn frequency_scaling_slows_compute_bound_kernels_proportionally() {
        let h100 = GpuSku::h100();
        let full = isolated_duration(
            &big_gemm(),
            &h100,
            Precision::Fp16,
            Datapath::TensorCore,
            1.0,
        );
        let half = isolated_duration(
            &big_gemm(),
            &h100,
            Precision::Fp16,
            Datapath::TensorCore,
            0.5,
        );
        let ratio = half / full;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernels_ignore_core_frequency() {
        let h100 = GpuSku::h100();
        let k = KernelKind::Elementwise {
            elems: 1 << 28,
            flops_per_elem: 1,
            streams: 2,
        };
        let full = isolated_duration(&k, &h100, Precision::Fp16, Datapath::Vector, 1.0);
        let half = isolated_duration(&k, &h100, Precision::Fp16, Datapath::Vector, 0.6);
        assert!((half / full - 1.0).abs() < 0.02);
    }

    #[test]
    fn tf32_is_coerced_onto_tensor_cores() {
        let d = demand(
            &big_gemm(),
            &GpuSku::a100(),
            Precision::Tf32,
            Datapath::Vector,
        );
        assert!(d.on_tensor_core);
    }

    #[test]
    fn non_matrix_kernels_stay_on_vector_path() {
        let d = demand(
            &KernelKind::LayerNorm { elems: 1 << 20 },
            &GpuSku::h100(),
            Precision::Fp16,
            Datapath::TensorCore,
        );
        assert!(!d.on_tensor_core);
    }

    #[test]
    fn sanity_h100_fp16_large_gemm_runs_near_peak() {
        // 8192^3 GEMM = 1.1 TFLOP; H100 FP16 dense ~989 TFLOP/s at ~72% eff
        // => ~1.5 ms.
        let t = isolated_duration(
            &big_gemm(),
            &GpuSku::h100(),
            Precision::Fp16,
            Datapath::TensorCore,
            1.0,
        );
        assert!(t > 0.8e-3 && t < 3.0e-3, "unexpected duration {t}");
    }

    #[test]
    fn bandwidth_demand_is_capped_at_achievable_bw() {
        let h100 = GpuSku::h100();
        let ew = KernelKind::Elementwise {
            elems: 1 << 28,
            flops_per_elem: 1,
            streams: 3,
        };
        let d = demand(&ew, &h100, Precision::Fp16, Datapath::Vector);
        assert!(d.bandwidth_demand() <= d.bytes_per_sec * (1.0 + 1e-9));
        assert!(!d.compute_bound());
    }

    #[test]
    fn machine_balance_orders_skus_sensibly() {
        // H100's tensor engine outgrew its HBM far more than the A100's.
        let h = machine_balance(&GpuSku::h100(), Precision::Fp16, Datapath::TensorCore);
        let a = machine_balance(&GpuSku::a100(), Precision::Fp16, Datapath::TensorCore);
        assert!(h > a, "H100 balance {h} vs A100 {a}");
        assert!((100.0..600.0).contains(&h), "H100 balance {h} FLOP/byte");
    }

    #[test]
    fn roofline_curve_is_monotone_and_saturates() {
        let sku = GpuSku::h100();
        let curve = roofline_curve(&sku, Precision::Fp16, Datapath::TensorCore, 0.1, 1e4, 64);
        assert_eq!(curve.len(), 64);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "attainable FLOPs must not drop");
        }
        let peak = sku.fp16_tensor_tflops * 1e3;
        assert!(
            (curve.last().unwrap().1 - peak).abs() < 1e-6,
            "saturates at peak"
        );
        // Below the balance point the curve is bandwidth-limited.
        assert!(curve[0].1 < peak / 100.0);
    }

    #[test]
    fn lower_bound_never_exceeds_isolated_duration() {
        let kernels = [
            big_gemm(),
            KernelKind::gemm(128, 128, 128),
            KernelKind::Elementwise {
                elems: 1 << 24,
                flops_per_elem: 1,
                streams: 2,
            },
            KernelKind::LayerNorm { elems: 1 << 20 },
        ];
        for sku in [GpuSku::a100(), GpuSku::h100(), GpuSku::mi210()] {
            for k in &kernels {
                for path in [Datapath::Vector, Datapath::TensorCore] {
                    let lb = lower_bound_duration(k, &sku, Precision::Fp16, path);
                    let iso = isolated_duration(k, &sku, Precision::Fp16, path, 1.0);
                    assert!(lb > 0.0, "bound must be positive");
                    assert!(
                        lb <= iso * (1.0 + 1e-12),
                        "lower bound {lb} exceeds isolated {iso} for {k:?} on {}",
                        sku.name
                    );
                }
            }
        }
    }

    #[test]
    fn batched_isolated_durations_match_the_per_kernel_sum_exactly() {
        let kernels = [
            big_gemm(),
            KernelKind::gemm(128, 512, 256),
            KernelKind::Elementwise {
                elems: 1 << 24,
                flops_per_elem: 1,
                streams: 2,
            },
            KernelKind::LayerNorm { elems: 1 << 20 },
        ];
        for sku in [GpuSku::a100(), GpuSku::h100(), GpuSku::mi210()] {
            for path in [Datapath::Vector, Datapath::TensorCore] {
                for freq in [1.0, 0.65] {
                    let batched =
                        isolated_total_duration(&kernels, &sku, Precision::Fp16, path, freq);
                    let summed: f64 = kernels
                        .iter()
                        .map(|k| isolated_duration(k, &sku, Precision::Fp16, path, freq))
                        .sum();
                    assert_eq!(batched, summed, "{} {path:?} {freq}", sku.name);
                }
            }
        }
    }

    #[test]
    fn big_gemms_are_compute_bound() {
        let d = demand(
            &big_gemm(),
            &GpuSku::h100(),
            Precision::Fp16,
            Datapath::TensorCore,
        );
        assert!(d.compute_bound());
    }
}
