//! DVFS governor: frequency selection under power limits.
//!
//! Real GPUs enforce their power limit with a hardware control loop that
//! reduces the core clock when a (ms-scale) moving average of board power
//! exceeds the limit. Short spikes pass through — this is why the paper can
//! observe 1.4x-TDP peaks (Fig. 6/7) while `nvidia-smi` power caps still
//! bite hard (Fig. 9, up to 107% slowdown at 100 W).
//!
//! We model this with two enforcement flavors:
//! * [`Enforcement::Transient`] — the stock behaviour: throttling only
//!   engages when demand exceeds `cap * headroom`, letting realistic spikes
//!   through while still penalizing sustained oversubscription.
//! * [`Enforcement::Strict`] — an explicit `nvidia-smi`-style cap: demand is
//!   clamped to the cap at every instant.

use crate::power::{PowerProfile, Utilization};
use std::fmt;

/// How a power limit is enforced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Enforcement {
    /// Clamp instantaneous power to the cap (software-set caps).
    Strict,
    /// Allow transient excursions up to `headroom * cap` before throttling
    /// (stock board behaviour; headroom ~1.25–1.35 on modern parts).
    Transient {
        /// Multiple of the cap tolerated instantaneously.
        headroom: f64,
    },
}

/// A power limit applied to one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLimit {
    /// The limit in watts.
    pub cap_w: f64,
    /// Enforcement flavor.
    pub enforcement: Enforcement,
}

impl PowerLimit {
    /// The stock limit for a board: TDP with transient headroom.
    pub fn stock(tdp_w: f64) -> Self {
        PowerLimit {
            cap_w: tdp_w,
            enforcement: Enforcement::Transient { headroom: 1.45 },
        }
    }

    /// An explicit software cap (`nvidia-smi -pl <watts>` equivalent).
    pub fn strict(cap_w: f64) -> Self {
        PowerLimit {
            cap_w,
            enforcement: Enforcement::Strict,
        }
    }

    /// The wattage above which throttling engages.
    pub fn throttle_threshold(&self) -> f64 {
        match self.enforcement {
            Enforcement::Strict => self.cap_w,
            Enforcement::Transient { headroom } => self.cap_w * headroom,
        }
    }
}

impl fmt::Display for PowerLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.enforcement {
            Enforcement::Strict => write!(f, "{:.0} W (strict)", self.cap_w),
            Enforcement::Transient { headroom } => {
                write!(f, "{:.0} W (transient x{headroom:.2})", self.cap_w)
            }
        }
    }
}

/// Result of a governor decision for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleDecision {
    /// Core-clock factor selected, in `[min_freq_factor, max_factor]`.
    pub freq_factor: f64,
    /// Board power at that frequency, watts.
    pub power_w: f64,
    /// Whether the limit forced a reduction below the requested maximum.
    pub throttled: bool,
}

/// Frequency governor for one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsGovernor {
    /// The active power limit.
    pub limit: PowerLimit,
    /// An additional user frequency cap in `(0, 1]` (`nvidia-smi -lgc`
    /// equivalent), 1.0 = no cap.
    pub max_freq_factor: f64,
}

impl DvfsGovernor {
    /// Governor with the stock limit for a TDP and no frequency cap.
    pub fn stock(tdp_w: f64) -> Self {
        DvfsGovernor {
            limit: PowerLimit::stock(tdp_w),
            max_freq_factor: 1.0,
        }
    }

    /// This governor with an additional transient frequency cap composed
    /// onto it (thermal throttle windows, straggler injection): the
    /// effective cap is the minimum of the existing cap and `factor`,
    /// clamped to `(0, 1]`. The power limit is untouched, so the throttled
    /// clock also pays the matching (lower) dynamic power.
    pub fn capped(&self, factor: f64) -> Self {
        DvfsGovernor {
            limit: self.limit,
            max_freq_factor: self
                .max_freq_factor
                .min(factor.clamp(f64::MIN_POSITIVE, 1.0)),
        }
    }

    /// Picks the highest legal frequency for the utilization this epoch.
    ///
    /// Solves `idle + uncore + core·f^alpha = threshold` for `f`, clamped to
    /// `[profile.min_freq_factor, max_freq_factor]`. Memory/comm power is not
    /// throttleable by the core clock, so under very low caps the board may
    /// still exceed the cap at the frequency floor — exactly the behaviour
    /// of real parts under aggressive `nvidia-smi -pl` settings.
    pub fn decide(&self, profile: &PowerProfile, u: &Utilization) -> ThrottleDecision {
        let threshold = self.limit.throttle_threshold();
        let core = profile.core_dynamic(u);
        let fixed = profile.idle_w + profile.uncore_dynamic(u);

        let unthrottled = fixed + core * self.max_freq_factor.powf(profile.alpha);
        if unthrottled <= threshold || core <= 0.0 {
            return ThrottleDecision {
                freq_factor: self.max_freq_factor,
                power_w: unthrottled,
                throttled: false,
            };
        }

        let budget = (threshold - fixed).max(0.0);
        let f = if budget > 0.0 {
            (budget / core).powf(1.0 / profile.alpha)
        } else {
            0.0
        };
        let f = f.clamp(profile.min_freq_factor, self.max_freq_factor);
        ThrottleDecision {
            freq_factor: f,
            power_w: fixed + core * f.powf(profile.alpha),
            throttled: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSku, SkuKind};

    fn busy() -> Utilization {
        Utilization {
            tensor: 1.0,
            mem: 0.8,
            comm: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn stock_limit_lets_transient_peaks_through() {
        let a100 = GpuSku::a100();
        let gov = DvfsGovernor::stock(a100.tdp_w);
        let d = gov.decide(&a100.power(), &busy());
        assert!(!d.throttled);
        assert!(
            d.power_w > a100.tdp_w,
            "peak {} should exceed TDP",
            d.power_w
        );
        assert_eq!(d.freq_factor, 1.0);
    }

    #[test]
    fn strict_cap_throttles_to_the_cap() {
        let a100 = GpuSku::a100();
        let gov = DvfsGovernor {
            limit: PowerLimit::strict(250.0),
            max_freq_factor: 1.0,
        };
        let d = gov.decide(&a100.power(), &busy());
        assert!(d.throttled);
        assert!(d.freq_factor < 1.0);
        assert!(d.power_w <= 250.0 + 1e-9);
    }

    #[test]
    fn a_100w_cap_on_a100_cuts_frequency_by_more_than_half() {
        // Fig. 9: at 100 W the A100 slows overlapping execution by ~100%.
        let a100 = GpuSku::a100();
        let gov = DvfsGovernor {
            limit: PowerLimit::strict(100.0),
            max_freq_factor: 1.0,
        };
        let d = gov.decide(&a100.power(), &busy());
        assert!(d.throttled);
        assert!(
            d.freq_factor <= 0.5,
            "100 W cap should halve the clock, got {}",
            d.freq_factor
        );
    }

    #[test]
    fn frequency_floor_is_respected_even_for_impossible_caps() {
        let a100 = GpuSku::a100();
        let profile = a100.power();
        let gov = DvfsGovernor {
            limit: PowerLimit::strict(10.0),
            max_freq_factor: 1.0,
        };
        let d = gov.decide(&profile, &busy());
        assert_eq!(d.freq_factor, profile.min_freq_factor);
        // Uncore power cannot be throttled; board exceeds the cap.
        assert!(d.power_w > 10.0);
    }

    #[test]
    fn frequency_cap_acts_without_power_pressure() {
        let a100 = GpuSku::a100();
        let gov = DvfsGovernor {
            limit: PowerLimit::stock(a100.tdp_w),
            max_freq_factor: 0.6,
        };
        let d = gov.decide(
            &a100.power(),
            &Utilization {
                tensor: 0.3,
                ..Default::default()
            },
        );
        assert_eq!(d.freq_factor, 0.6);
        assert!(!d.throttled);
    }

    #[test]
    fn idle_boards_never_throttle() {
        for kind in SkuKind::ALL {
            let sku = kind.sku();
            let gov = DvfsGovernor {
                limit: PowerLimit::strict(sku.idle_w + 1.0),
                max_freq_factor: 1.0,
            };
            let d = gov.decide(&sku.power(), &Utilization::idle());
            assert!(!d.throttled, "{kind}");
            assert!((d.power_w - sku.idle_w).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_caps_compose_and_lower_power() {
        let a100 = GpuSku::a100();
        let gov = DvfsGovernor::stock(a100.tdp_w);
        let throttled = gov.capped(0.7);
        assert_eq!(throttled.max_freq_factor, 0.7);
        // Composing keeps the tighter of the two caps.
        assert_eq!(throttled.capped(0.9).max_freq_factor, 0.7);
        assert_eq!(gov.capped(1.0), gov);
        let full = gov.decide(&a100.power(), &busy());
        let slow = throttled.decide(&a100.power(), &busy());
        assert!(slow.freq_factor < full.freq_factor);
        assert!(slow.power_w < full.power_w);
    }

    #[test]
    fn power_limit_display_names_enforcement() {
        assert_eq!(PowerLimit::strict(150.0).to_string(), "150 W (strict)");
        assert!(PowerLimit::stock(400.0).to_string().contains("transient"));
    }
}
