//! GPU SKU datasheets (the paper's Table I, plus simulator parameters).

use crate::{ContentionProfile, Datapath, PowerProfile, Precision};
use std::fmt;

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA (NVLink/NVSwitch interconnect, NCCL collectives).
    Nvidia,
    /// AMD (Infinity Fabric interconnect, RCCL collectives).
    Amd,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// The four SKUs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SkuKind {
    /// NVIDIA A100 SXM 40 GB.
    A100,
    /// NVIDIA H100 SXM 80 GB.
    H100,
    /// AMD Instinct MI210 64 GB.
    Mi210,
    /// AMD Instinct MI250 128 GB.
    Mi250,
}

impl SkuKind {
    /// All evaluated SKUs, in Table I order.
    pub const ALL: [SkuKind; 4] = [SkuKind::A100, SkuKind::H100, SkuKind::Mi210, SkuKind::Mi250];

    /// The full datasheet for this SKU.
    pub fn sku(self) -> GpuSku {
        match self {
            SkuKind::A100 => GpuSku::a100(),
            SkuKind::H100 => GpuSku::h100(),
            SkuKind::Mi210 => GpuSku::mi210(),
            SkuKind::Mi250 => GpuSku::mi250(),
        }
    }
}

impl fmt::Display for SkuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkuKind::A100 => write!(f, "A100"),
            SkuKind::H100 => write!(f, "H100"),
            SkuKind::Mi210 => write!(f, "MI210"),
            SkuKind::Mi250 => write!(f, "MI250"),
        }
    }
}

/// Datasheet and simulator parameters for one GPU SKU.
///
/// Throughput fields are *achievable-dense* peaks (no structured sparsity) —
/// these drive the performance model. The `table1_*` fields carry the numbers
/// exactly as printed in the paper's Table I (which quotes the H100 FP16
/// figure with sparsity) so that the `table1` regenerator matches the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSku {
    /// SKU identity.
    pub kind: SkuKind,
    /// Marketing name.
    pub name: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Launch year (Table I).
    pub year: u16,
    /// FP32 throughput on the vector datapath, TFLOP/s.
    pub fp32_vector_tflops: f64,
    /// FP16/BF16 throughput on the vector datapath, TFLOP/s.
    pub fp16_vector_tflops: f64,
    /// FP32 throughput on the matrix datapath (AMD only; NVIDIA tensor cores
    /// have no true-FP32 mode, so this equals the vector figure there).
    pub fp32_matrix_tflops: f64,
    /// TF32 throughput on tensor cores, TFLOP/s (NVIDIA; AMD falls back to
    /// FP32 matrix).
    pub tf32_tensor_tflops: f64,
    /// FP16/BF16 throughput on tensor/matrix cores, TFLOP/s (dense).
    pub fp16_tensor_tflops: f64,
    /// HBM capacity in GiB.
    pub mem_gb: u64,
    /// HBM bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Board power limit (TDP), watts.
    pub tdp_w: f64,
    /// Idle draw, watts.
    pub idle_w: f64,
    /// Streaming multiprocessors (NVIDIA) or compute units (AMD).
    pub n_sms: u32,
    /// Per-direction interconnect bandwidth per GPU, GB/s (NVLink/IF).
    pub link_bw_unidir_gbs: f64,
    /// Interconnect hop latency, microseconds.
    pub link_latency_us: f64,
    /// Paper Table I "Peak FLOPS (FP32)" entry, for verbatim reproduction.
    pub table1_fp32: f64,
    /// Paper Table I "Peak FLOPS (FP16)" entry, for verbatim reproduction.
    pub table1_fp16: f64,
}

impl GpuSku {
    /// NVIDIA A100 SXM 40 GB (DGX A100 class node, NVLink3 + NVSwitch).
    pub fn a100() -> Self {
        GpuSku {
            kind: SkuKind::A100,
            name: "A100",
            vendor: Vendor::Nvidia,
            year: 2020,
            fp32_vector_tflops: 19.5,
            fp16_vector_tflops: 78.0,
            fp32_matrix_tflops: 19.5,
            tf32_tensor_tflops: 156.0,
            fp16_tensor_tflops: 312.0,
            mem_gb: 40,
            mem_bw_gbs: 1555.0,
            tdp_w: 400.0,
            idle_w: 55.0,
            n_sms: 108,
            link_bw_unidir_gbs: 300.0,
            link_latency_us: 5.0,
            table1_fp32: 19.5,
            table1_fp16: 312.0,
        }
    }

    /// NVIDIA H100 SXM 80 GB (DGX H100 class node, NVLink4 + NVSwitch).
    pub fn h100() -> Self {
        GpuSku {
            kind: SkuKind::H100,
            name: "H100",
            vendor: Vendor::Nvidia,
            year: 2022,
            fp32_vector_tflops: 66.9,
            fp16_vector_tflops: 133.8,
            fp32_matrix_tflops: 66.9,
            tf32_tensor_tflops: 494.7,
            fp16_tensor_tflops: 989.5,
            mem_gb: 80,
            mem_bw_gbs: 3350.0,
            tdp_w: 700.0,
            idle_w: 80.0,
            n_sms: 132,
            link_bw_unidir_gbs: 450.0,
            link_latency_us: 4.0,
            table1_fp32: 66.9,
            table1_fp16: 1979.0,
        }
    }

    /// AMD Instinct MI210 64 GB (Infinity Fabric).
    pub fn mi210() -> Self {
        GpuSku {
            kind: SkuKind::Mi210,
            name: "MI210",
            vendor: Vendor::Amd,
            year: 2021,
            fp32_vector_tflops: 22.6,
            fp16_vector_tflops: 45.3,
            fp32_matrix_tflops: 45.3,
            tf32_tensor_tflops: 45.3,
            fp16_tensor_tflops: 181.0,
            mem_gb: 64,
            mem_bw_gbs: 1638.0,
            tdp_w: 300.0,
            idle_w: 45.0,
            n_sms: 104,
            link_bw_unidir_gbs: 150.0,
            link_latency_us: 6.0,
            table1_fp32: 22.6,
            table1_fp16: 181.0,
        }
    }

    /// AMD Instinct MI250 128 GB (dual-GCD OAM, Infinity Fabric).
    pub fn mi250() -> Self {
        GpuSku {
            kind: SkuKind::Mi250,
            name: "MI250",
            vendor: Vendor::Amd,
            year: 2021,
            fp32_vector_tflops: 45.3,
            fp16_vector_tflops: 90.5,
            fp32_matrix_tflops: 90.5,
            tf32_tensor_tflops: 90.5,
            fp16_tensor_tflops: 362.1,
            mem_gb: 128,
            mem_bw_gbs: 3277.0,
            tdp_w: 560.0,
            idle_w: 90.0,
            n_sms: 208,
            link_bw_unidir_gbs: 150.0,
            link_latency_us: 6.0,
            table1_fp32: 45.3,
            table1_fp16: 362.1,
        }
    }

    /// All four SKUs in Table I order.
    pub fn all() -> Vec<GpuSku> {
        SkuKind::ALL.iter().map(|k| k.sku()).collect()
    }

    /// Peak dense throughput in TFLOP/s for a (precision, datapath) pair.
    ///
    /// Combinations that do not exist in hardware degrade to the nearest
    /// real path: TF32 on the vector path runs as FP32; FP32 on NVIDIA
    /// tensor cores runs as TF32 internally only when the precision *is*
    /// TF32, so plain FP32 stays on the vector figure.
    pub fn peak_tflops(&self, precision: Precision, datapath: Datapath) -> f64 {
        match (precision, datapath) {
            (Precision::Fp32, Datapath::Vector) => self.fp32_vector_tflops,
            (Precision::Fp32, Datapath::TensorCore) => self.fp32_matrix_tflops,
            (Precision::Tf32, Datapath::Vector) => self.fp32_vector_tflops,
            (Precision::Tf32, Datapath::TensorCore) => self.tf32_tensor_tflops,
            (Precision::Fp16 | Precision::Bf16, Datapath::Vector) => self.fp16_vector_tflops,
            (Precision::Fp16 | Precision::Bf16, Datapath::TensorCore) => self.fp16_tensor_tflops,
        }
    }

    /// The SKU's contention calibration (see `calibration.rs`).
    pub fn contention(&self) -> ContentionProfile {
        ContentionProfile::for_sku(self.kind)
    }

    /// The SKU's power model calibration.
    pub fn power(&self) -> PowerProfile {
        PowerProfile::for_sku(self.kind)
    }

    /// HBM capacity in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_gb * 1024 * 1024 * 1024
    }

    /// Unidirectional host-link (PCIe) bandwidth in GB/s — the path
    /// checkpoint writes and restores take to host memory/storage. Derived
    /// from the launch generation: Hopper-era boards ship PCIe Gen5 x16
    /// (~64 GB/s), the 2020/2021 parts ship Gen4 x16 (~32 GB/s).
    pub fn host_link_gbs(&self) -> f64 {
        if self.year >= 2022 {
            64.0
        } else {
            32.0
        }
    }
}

impl fmt::Display for GpuSku {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.vendor, self.name)
    }
}

/// Renders the paper's Table I as a markdown table.
pub fn table1_markdown() -> String {
    let mut out = String::from(
        "| Vendor | GPU | Year | Peak FLOPS (FP32) | Peak FLOPS (FP16) | Memory Size (GB) |\n\
         |--------|-----|------|-------------------|-------------------|------------------|\n",
    );
    for sku in GpuSku::all() {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            sku.vendor, sku.name, sku.year, sku.table1_fp32, sku.table1_fp16, sku.mem_gb
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_table1_order() {
        let names: Vec<&str> = GpuSku::all().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["A100", "H100", "MI210", "MI250"]);
    }

    #[test]
    fn table1_numbers_match_paper() {
        let h100 = GpuSku::h100();
        assert_eq!(h100.table1_fp32, 66.9);
        assert_eq!(h100.table1_fp16, 1979.0);
        assert_eq!(h100.mem_gb, 80);
        let mi250 = GpuSku::mi250();
        assert_eq!(mi250.table1_fp16, 362.1);
        assert_eq!(mi250.mem_gb, 128);
    }

    #[test]
    fn peak_tflops_covers_every_combination() {
        for sku in GpuSku::all() {
            for p in Precision::ALL {
                for d in Datapath::ALL {
                    let t = sku.peak_tflops(p, d);
                    assert!(t > 0.0, "{} {p} {d}", sku.name);
                }
            }
        }
    }

    #[test]
    fn tensor_core_is_never_slower_than_vector() {
        for sku in GpuSku::all() {
            for p in Precision::ALL {
                assert!(
                    sku.peak_tflops(p, Datapath::TensorCore)
                        >= sku.peak_tflops(p, Datapath::Vector),
                    "{} {p}",
                    sku.name
                );
            }
        }
    }

    #[test]
    fn nvidia_gpus_have_faster_links_than_amd() {
        assert!(GpuSku::h100().link_bw_unidir_gbs > GpuSku::mi250().link_bw_unidir_gbs);
        assert!(GpuSku::a100().link_bw_unidir_gbs > GpuSku::mi210().link_bw_unidir_gbs);
    }

    #[test]
    fn table1_markdown_contains_all_rows() {
        let table = table1_markdown();
        for name in ["A100", "H100", "MI210", "MI250"] {
            assert!(table.contains(name));
        }
        assert!(table.contains("1979"));
    }

    #[test]
    fn mem_bytes_is_gib() {
        assert_eq!(GpuSku::a100().mem_bytes(), 40 * (1 << 30));
    }

    #[test]
    fn host_link_tracks_the_pcie_generation() {
        assert_eq!(GpuSku::h100().host_link_gbs(), 64.0);
        for sku in [GpuSku::a100(), GpuSku::mi210(), GpuSku::mi250()] {
            assert_eq!(sku.host_link_gbs(), 32.0, "{}", sku.name);
        }
        for sku in GpuSku::all() {
            assert!(
                sku.host_link_gbs() < sku.mem_bw_gbs,
                "host link is always the slower path on {}",
                sku.name
            );
        }
    }
}
