//! Per-SKU contention calibration.
//!
//! These coefficients encode *where* compute/communication interference
//! comes from — SM occupancy of collective kernels, HBM traffic
//! amplification, cache pollution, and achievable link efficiency — and are
//! tuned so the simulator lands in the paper's reported ranges:
//!
//! * MI210 FSDP: mean compute slowdown ≈ 11.3%, peaks ≈ 23% (Sec. V-A);
//! * H100 FSDP: 2.3–7.25%, peaking at 19.2%;
//! * A100: ≤ 4.3% (memory-capacity-limited to small models);
//! * MI250 on GPT-3 13B: slowdowns approaching 40%;
//! * pipeline parallelism consistently below FSDP (send/recv needs fewer
//!   SMs and no reduction math).
//!
//! The AMD parts get heavier coefficients than the NVIDIA parts: RCCL runs
//! wider workgroups per channel, Infinity Fabric transfers are staged
//! through HBM on both GCDs, and the paper observes correspondingly higher
//! interference.

use crate::SkuKind;

/// Version of the calibration constants in this module (and of the SKU
/// datasheet tables they pair with). Bump it whenever any coefficient
/// changes: the version is part of every sweep cell's content-addressed
/// cache key, so stale cached metrics from an older calibration can never
/// be served for a newer build.
pub const CALIBRATION_VERSION: u32 = 1;

/// Contention coefficients for one SKU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionProfile {
    /// Fraction of the GPU's SMs occupied by one collective channel.
    pub sm_fraction_per_channel: f64,
    /// Ceiling on total SM occupancy by communication kernels.
    pub max_comm_sm_fraction: f64,
    /// HBM bytes moved per byte on the wire (ring steps read and write
    /// staging buffers; reductions read two operands).
    pub hbm_bytes_per_wire_byte: f64,
    /// Multiplicative compute slowdown from cache/TLB pollution whenever a
    /// communication kernel is co-resident (1.0 = none).
    pub l2_interference: f64,
    /// Achievable ring bus-bandwidth as a fraction of the unidirectional
    /// link bandwidth.
    pub ring_busbw_efficiency: f64,
    /// Achievable point-to-point bandwidth as a fraction of the link rate
    /// (send/recv avoids the ring's staging and synchronization overheads).
    pub p2p_efficiency: f64,
    /// Base latency of one collective launch, microseconds.
    pub collective_launch_us: f64,
}

impl ContentionProfile {
    /// Calibrated profile for a SKU.
    pub fn for_sku(kind: SkuKind) -> Self {
        match kind {
            SkuKind::A100 => ContentionProfile {
                sm_fraction_per_channel: 1.0 / 108.0,
                max_comm_sm_fraction: 0.16,
                hbm_bytes_per_wire_byte: 2.0,
                l2_interference: 1.20,
                ring_busbw_efficiency: 0.55,
                p2p_efficiency: 0.85,
                collective_launch_us: 12.0,
            },
            SkuKind::H100 => ContentionProfile {
                sm_fraction_per_channel: 1.0 / 132.0,
                max_comm_sm_fraction: 0.18,
                hbm_bytes_per_wire_byte: 2.0,
                l2_interference: 1.15,
                ring_busbw_efficiency: 0.60,
                p2p_efficiency: 0.85,
                collective_launch_us: 10.0,
            },
            // RCCL runs wide workgroups per channel and stages ring steps
            // through HBM on the way across Infinity Fabric; measured 4-GPU
            // all-reduce bus bandwidth on these parts is a small fraction of
            // the link rate, and co-resident collectives interfere heavily
            // with compute (the paper's 11.3%-mean / 23%-peak MI210 numbers).
            SkuKind::Mi210 => ContentionProfile {
                sm_fraction_per_channel: 4.0 / 104.0,
                max_comm_sm_fraction: 0.28,
                hbm_bytes_per_wire_byte: 3.0,
                l2_interference: 1.35,
                ring_busbw_efficiency: 0.28,
                p2p_efficiency: 0.50,
                collective_launch_us: 18.0,
            },
            // The MI250 is a dual-GCD package: every ring step crosses the
            // in-package fabric and both GCDs' HBM, roughly doubling staging
            // traffic and cache pollution relative to the MI210. This is the
            // part the paper reports ~40% compute slowdowns on for 13B-class
            // models (Sec. V-A, Fig. 5).
            SkuKind::Mi250 => ContentionProfile {
                sm_fraction_per_channel: 8.0 / 208.0,
                max_comm_sm_fraction: 0.35,
                hbm_bytes_per_wire_byte: 4.0,
                l2_interference: 1.45,
                ring_busbw_efficiency: 0.15,
                p2p_efficiency: 0.50,
                collective_launch_us: 20.0,
            },
        }
    }

    /// SM fraction consumed by `channels` collective channels, capped.
    pub fn comm_sm_fraction(&self, channels: u32) -> f64 {
        (self.sm_fraction_per_channel * f64::from(channels)).min(self.max_comm_sm_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_parts_have_heavier_interference_than_nvidia() {
        let h100 = ContentionProfile::for_sku(SkuKind::H100);
        let mi250 = ContentionProfile::for_sku(SkuKind::Mi250);
        assert!(mi250.l2_interference > h100.l2_interference);
        assert!(mi250.hbm_bytes_per_wire_byte > h100.hbm_bytes_per_wire_byte);
        assert!(mi250.ring_busbw_efficiency < h100.ring_busbw_efficiency);
    }

    #[test]
    fn comm_sm_fraction_caps_at_profile_maximum() {
        let p = ContentionProfile::for_sku(SkuKind::A100);
        assert!(p.comm_sm_fraction(1) > 0.0);
        assert!(p.comm_sm_fraction(1000) <= p.max_comm_sm_fraction);
        assert!(p.comm_sm_fraction(4) < p.comm_sm_fraction(8));
    }

    #[test]
    fn amplification_is_at_least_two_everywhere() {
        // Ring steps fundamentally read and write HBM once per wire byte.
        for kind in SkuKind::ALL {
            assert!(ContentionProfile::for_sku(kind).hbm_bytes_per_wire_byte >= 2.0);
        }
    }
}
