//! # olab-gpu — GPU device models
//!
//! Device-level models for the four accelerators the paper evaluates
//! (NVIDIA A100/H100, AMD MI210/MI250):
//!
//! * [`GpuSku`] — per-SKU datasheet numbers (Table I of the paper) plus the
//!   microarchitectural parameters the simulator needs (SM count, HBM
//!   bandwidth, interconnect bandwidth, TDP);
//! * [`Precision`] / [`Datapath`] — numeric formats and the vector-core vs.
//!   tensor/matrix-core execution paths (Section V-C of the paper);
//! * [`KernelKind`] — analytic FLOP/byte models of the kernels that dominate
//!   transformer training;
//! * [`roofline`] — isolated kernel execution times under a roofline model;
//! * [`PowerProfile`] / [`power`] — component-based instantaneous power;
//! * [`DvfsGovernor`] — frequency throttling under power caps (Figure 9);
//! * [`ContentionProfile`] — per-SKU calibration of the compute/communication
//!   interference coefficients (SM occupancy of collective kernels, HBM
//!   traffic amplification, cache interference).
//!
//! ```rust
//! use olab_gpu::{roofline, Datapath, GpuSku, KernelKind, Precision};
//!
//! let h100 = GpuSku::h100();
//! let gemm = KernelKind::gemm(4096, 4096, 4096);
//! let t = roofline::isolated_duration(&gemm, &h100, Precision::Fp16, Datapath::TensorCore, 1.0);
//! assert!(t > 0.0 && t < 1.0, "a 4Ki GEMM takes well under a second: {t}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod dvfs;
mod kernel;
pub mod power;
mod precision;
pub mod roofline;
mod sku;

pub use calibration::{ContentionProfile, CALIBRATION_VERSION};
pub use dvfs::{DvfsGovernor, Enforcement, PowerLimit, ThrottleDecision};
pub use kernel::KernelKind;
pub use power::PowerProfile;
pub use precision::{Datapath, Precision};
pub use sku::{table1_markdown, GpuSku, SkuKind, Vendor};
