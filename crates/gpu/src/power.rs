//! Component-based instantaneous power model.
//!
//! Board power is decomposed into idle + core-clock-scaled compute power
//! (vector or tensor datapath) + memory-system power + communication-engine
//! power. Components are calibrated per SKU so that the *sum* at full
//! utilization exceeds TDP by ~35–40% — matching the paper's observation
//! that overlapped execution pushes H100 boards to 1.4x TDP (Fig. 6) and
//! that overlap adds up to ~25% peak power over non-overlapped runs.

use crate::SkuKind;

/// Utilization of each power component, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilization {
    /// Vector-datapath activity.
    pub vector: f64,
    /// Tensor/matrix-datapath activity.
    pub tensor: f64,
    /// HBM bandwidth utilization.
    pub mem: f64,
    /// Communication engines (copy engines, links, PHYs).
    pub comm: f64,
}

impl Utilization {
    /// An all-idle utilization.
    pub fn idle() -> Self {
        Self::default()
    }
}

/// Per-SKU power calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Idle draw, watts.
    pub idle_w: f64,
    /// Dynamic watts of the vector datapath at 100% activity, full clock.
    pub vector_w: f64,
    /// Dynamic watts of the tensor/matrix datapath at 100% activity.
    pub tensor_w: f64,
    /// Dynamic watts of the memory system at 100% bandwidth.
    pub mem_w: f64,
    /// Dynamic watts of the communication engines at full rate.
    pub comm_w: f64,
    /// Exponent of dynamic-power-vs-frequency scaling (`P ∝ f^alpha`,
    /// capturing the voltage/frequency curve).
    pub alpha: f64,
    /// Lowest frequency factor DVFS may select.
    pub min_freq_factor: f64,
}

impl PowerProfile {
    /// The calibrated profile for a SKU.
    pub fn for_sku(kind: SkuKind) -> Self {
        match kind {
            // Max draw 55+290+135+55 = 535 W = 1.34x of 400 W TDP.
            SkuKind::A100 => PowerProfile {
                idle_w: 55.0,
                vector_w: 260.0,
                tensor_w: 290.0,
                mem_w: 135.0,
                comm_w: 55.0,
                alpha: 2.2,
                min_freq_factor: 0.40,
            },
            // Max draw 80+560+255+85 = 980 W = 1.40x of 700 W TDP (Fig. 6).
            SkuKind::H100 => PowerProfile {
                idle_w: 80.0,
                vector_w: 420.0,
                tensor_w: 560.0,
                mem_w: 255.0,
                comm_w: 85.0,
                alpha: 2.2,
                min_freq_factor: 0.40,
            },
            // Max draw 45+215+100+45 = 405 W = 1.35x of 300 W TDP.
            SkuKind::Mi210 => PowerProfile {
                idle_w: 45.0,
                vector_w: 190.0,
                tensor_w: 215.0,
                mem_w: 100.0,
                comm_w: 45.0,
                alpha: 2.2,
                min_freq_factor: 0.40,
            },
            // Max draw 90+430+190+85 = 795 W = 1.42x of 560 W TDP.
            SkuKind::Mi250 => PowerProfile {
                idle_w: 90.0,
                vector_w: 380.0,
                tensor_w: 430.0,
                mem_w: 190.0,
                comm_w: 85.0,
                alpha: 2.2,
                min_freq_factor: 0.40,
            },
        }
    }

    /// Instantaneous board power at a utilization and core-clock factor.
    ///
    /// Compute power scales with `f^alpha`; memory and communication power
    /// live on separate clock domains and do not.
    pub fn instantaneous(&self, u: &Utilization, freq_factor: f64) -> f64 {
        self.idle_w + self.core_dynamic(u) * freq_factor.powf(self.alpha) + self.uncore_dynamic(u)
    }

    /// Core-clock-scaled dynamic power at full frequency.
    pub fn core_dynamic(&self, u: &Utilization) -> f64 {
        self.vector_w * u.vector.clamp(0.0, 1.0) + self.tensor_w * u.tensor.clamp(0.0, 1.0)
    }

    /// Dynamic power unaffected by the core clock.
    pub fn uncore_dynamic(&self, u: &Utilization) -> f64 {
        self.mem_w * u.mem.clamp(0.0, 1.0) + self.comm_w * u.comm.clamp(0.0, 1.0)
    }

    /// Maximum possible instantaneous draw (everything saturated).
    pub fn max_draw(&self) -> f64 {
        self.idle_w + self.vector_w.max(self.tensor_w) + self.mem_w + self.comm_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuSku;

    #[test]
    fn idle_utilization_draws_idle_power() {
        let p = PowerProfile::for_sku(SkuKind::H100);
        assert_eq!(p.instantaneous(&Utilization::idle(), 1.0), p.idle_w);
    }

    #[test]
    fn max_draw_exceeds_tdp_by_30_to_45_percent_on_all_skus() {
        for sku in GpuSku::all() {
            let p = sku.power();
            let ratio = p.max_draw() / sku.tdp_w;
            assert!(
                (1.30..=1.45).contains(&ratio),
                "{}: max/TDP = {ratio}",
                sku.name
            );
        }
    }

    #[test]
    fn frequency_scaling_reduces_core_power_superlinearly() {
        let p = PowerProfile::for_sku(SkuKind::A100);
        let u = Utilization {
            tensor: 1.0,
            ..Default::default()
        };
        let full = p.instantaneous(&u, 1.0) - p.idle_w;
        let half = p.instantaneous(&u, 0.5) - p.idle_w;
        assert!(half < full / 2.0, "alpha > 1 means superlinear saving");
    }

    #[test]
    fn uncore_power_ignores_frequency() {
        let p = PowerProfile::for_sku(SkuKind::Mi250);
        let u = Utilization {
            mem: 1.0,
            comm: 1.0,
            ..Default::default()
        };
        assert_eq!(p.instantaneous(&u, 1.0), p.instantaneous(&u, 0.5));
    }

    #[test]
    fn utilization_is_clamped() {
        let p = PowerProfile::for_sku(SkuKind::A100);
        let u = Utilization {
            tensor: 2.0,
            ..Default::default()
        };
        let capped = Utilization {
            tensor: 1.0,
            ..Default::default()
        };
        assert_eq!(p.instantaneous(&u, 1.0), p.instantaneous(&capped, 1.0));
    }
}
