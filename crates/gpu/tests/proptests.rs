//! Property-based tests for the GPU device models.

use olab_gpu::power::Utilization;
use olab_gpu::{
    roofline, Datapath, DvfsGovernor, GpuSku, KernelKind, PowerLimit, Precision, SkuKind,
};
use proptest::prelude::*;

fn any_sku() -> impl Strategy<Value = SkuKind> {
    prop_oneof![
        Just(SkuKind::A100),
        Just(SkuKind::H100),
        Just(SkuKind::Mi210),
        Just(SkuKind::Mi250),
    ]
}

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Fp32),
        Just(Precision::Tf32),
        Just(Precision::Fp16),
        Just(Precision::Bf16),
    ]
}

fn any_gemm() -> impl Strategy<Value = KernelKind> {
    (1u64..8192, 1u64..8192, 1u64..8192).prop_map(|(m, n, k)| KernelKind::Gemm { m, n, k })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Durations are always positive and finite, and never faster than the
    /// absolute roofline (peak FLOPs and bandwidth with no efficiency loss).
    #[test]
    fn durations_respect_the_ideal_roofline(
        sku in any_sku(),
        precision in any_precision(),
        gemm in any_gemm(),
    ) {
        let sku = sku.sku();
        for datapath in Datapath::ALL {
            let t = roofline::isolated_duration(&gemm, &sku, precision, datapath, 1.0);
            prop_assert!(t.is_finite() && t > 0.0);
            let floor = gemm.flops() / (sku.peak_tflops(precision, Datapath::TensorCore) * 1e12);
            prop_assert!(t >= floor, "duration {t} under physical floor {floor}");
        }
    }

    /// Lowering the clock never speeds a kernel up, and at most slows it by
    /// the clock ratio.
    #[test]
    fn frequency_scaling_is_monotone_and_bounded(
        sku in any_sku(),
        gemm in any_gemm(),
        freq in 0.4f64..1.0,
    ) {
        let sku = sku.sku();
        let full = roofline::isolated_duration(&gemm, &sku, Precision::Fp16, Datapath::TensorCore, 1.0);
        let slow = roofline::isolated_duration(&gemm, &sku, Precision::Fp16, Datapath::TensorCore, freq);
        prop_assert!(slow >= full - 1e-15);
        prop_assert!(slow <= full / freq + 1e-12, "slow {slow} vs bound {}", full / freq);
    }

    /// Power is monotone in utilization and bounded by the component sum.
    #[test]
    fn power_is_monotone_and_bounded(
        sku in any_sku(),
        vector in 0.0f64..1.0,
        tensor in 0.0f64..1.0,
        mem in 0.0f64..1.0,
        comm in 0.0f64..1.0,
    ) {
        let profile = sku.sku().power();
        let u = Utilization { vector, tensor, mem, comm };
        let p = profile.instantaneous(&u, 1.0);
        prop_assert!(p >= profile.idle_w);
        prop_assert!(p <= profile.idle_w + profile.vector_w + profile.tensor_w
            + profile.mem_w + profile.comm_w + 1e-9);
        // Doubling any one utilization never lowers power.
        let more = Utilization { vector: (vector * 1.5).min(1.0), ..u };
        prop_assert!(profile.instantaneous(&more, 1.0) >= p - 1e-9);
    }

    /// The DVFS governor never exceeds a strict cap unless it is already at
    /// the frequency floor, and never throttles below it.
    #[test]
    fn governor_respects_strict_caps(
        sku in any_sku(),
        cap in 50.0f64..800.0,
        tensor in 0.0f64..1.0,
        mem in 0.0f64..1.0,
    ) {
        let profile = sku.sku().power();
        let gov = DvfsGovernor { limit: PowerLimit::strict(cap), max_freq_factor: 1.0 };
        let u = Utilization { tensor, mem, ..Default::default() };
        let d = gov.decide(&profile, &u);
        prop_assert!(d.freq_factor >= profile.min_freq_factor - 1e-12);
        prop_assert!(d.freq_factor <= 1.0 + 1e-12);
        if d.freq_factor > profile.min_freq_factor + 1e-9 {
            prop_assert!(d.power_w <= cap + 1e-6, "{} W over cap {cap}", d.power_w);
        }
    }

    /// FLOP and byte counts scale linearly in GEMM dimensions.
    #[test]
    fn gemm_counts_scale_linearly(m in 1u64..1000, n in 1u64..1000, k in 1u64..1000) {
        let one = KernelKind::Gemm { m, n, k };
        let two = KernelKind::Gemm { m: 2 * m, n, k };
        prop_assert!((two.flops() / one.flops() - 2.0).abs() < 1e-9);
        prop_assert!(two.bytes(Precision::Fp16) > one.bytes(Precision::Fp16));
    }

    /// Arithmetic intensity is invariant to precision only through byte
    /// width: halving the element size doubles intensity for GEMMs.
    #[test]
    fn intensity_scales_with_element_width(gemm in any_gemm()) {
        let i16 = gemm.intensity(Precision::Fp16);
        let i32 = gemm.intensity(Precision::Fp32);
        prop_assert!((i16 / i32 - 2.0).abs() < 1e-6);
    }
}

#[test]
fn all_skus_have_consistent_datasheets() {
    for sku in GpuSku::all() {
        assert!(sku.fp16_tensor_tflops >= sku.fp32_vector_tflops);
        assert!(sku.mem_bw_gbs > 0.0 && sku.tdp_w > sku.idle_w);
        assert!(sku.n_sms > 0 && sku.mem_gb > 0);
    }
}
