//! Quickstart: characterize one training iteration on a simulated 4×H100
//! node and print the paper's metrics for it.
//!
//! ```sh
//! cargo run --release -p olab-core --example quickstart
//! ```

use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GPT-3 2.7B, FSDP across 4 H100s, per-GPU batch 8, FP16 on tensor
    // cores — one cell of the paper's Fig. 4/5/6 grid.
    let experiment = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8);
    println!("experiment: {experiment}");

    let report = experiment.run()?;
    let m = &report.metrics;

    println!("\n-- performance --");
    println!("activation policy:        {:?}", report.activation_policy);
    println!("E2E ideal (Eq. 4):        {:8.1} ms", m.e2e_ideal_s * 1e3);
    println!(
        "E2E overlapped:           {:8.1} ms",
        m.e2e_overlapped_s * 1e3
    );
    println!(
        "E2E sequential:           {:8.1} ms (derived via Eq. 5: {:.1} ms)",
        m.e2e_sequential_measured_s * 1e3,
        m.e2e_sequential_derived_s * 1e3
    );
    println!(
        "compute slowdown (Eq. 1): {:8.1} %",
        m.compute_slowdown * 100.0
    );
    println!(
        "overlap ratio (Eq. 2):    {:8.1} %",
        m.overlap_ratio * 100.0
    );

    let tdp = report.tdp_w();
    println!("\n-- power --");
    println!(
        "average power:            {:8.0} W ({:.2}x TDP)",
        m.avg_power_w,
        m.avg_power_w / tdp
    );
    println!(
        "peak power:               {:8.0} W ({:.2}x TDP)",
        m.peak_power_w,
        m.peak_power_w / tdp
    );
    println!(
        "NVML-sampled peak:        {:8.0} W ({:.2}x TDP)",
        report.sampled_peak_w,
        report.sampled_peak_w / tdp
    );
    println!("iteration energy:         {:8.0} J", m.energy_j);

    println!("\n-- takeaway 3 (overlap helps, but contention costs) --");
    println!(
        "overlap beats sequential by {:.1}%, but is {:.1}% above the ideal",
        m.sequential_vs_overlapped() * 100.0,
        m.overlap_vs_ideal() * 100.0
    );
    Ok(())
}
