//! Critical-path anatomy of one training iteration: what actually
//! determines the makespan, and how much of it is communication?
//!
//! ```sh
//! cargo run --release -p olab-core --example critical_path [--sequential]
//! ```

use olab_core::{execute, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_parallel::ExecutionMode;
use olab_sim::critical_path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sequential = std::env::args().any(|a| a == "--sequential");
    let mode = if sequential {
        ExecutionMode::Sequential
    } else {
        ExecutionMode::Overlapped
    };

    let exp = Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8);
    let policy = exp.validate()?;
    let machine = exp.machine();
    let workload = exp.timeline(mode, policy)?;
    let run = execute(&workload, &machine)?;
    let path = critical_path(&workload, &run.trace);

    println!(
        "critical path of {} ({mode} mode): {} steps over {:.1} ms\n",
        exp.label(),
        path.steps.len(),
        path.makespan_s * 1e3
    );
    println!(
        "composition: {:.1}% compute, {:.1}% communication, {:.1}% idle\n",
        path.compute_s / path.makespan_s * 100.0,
        path.comm_fraction() * 100.0,
        path.idle_s / path.makespan_s * 100.0
    );

    // The ten longest steps on the path.
    let mut longest: Vec<_> = path.steps.iter().collect();
    longest.sort_by(|a, b| b.duration_s.total_cmp(&a.duration_s));
    println!("ten longest steps on the path:");
    for step in longest.iter().take(10) {
        println!(
            "  {:>9.3} ms  [{}]  {}",
            step.duration_s * 1e3,
            step.stream,
            step.label
        );
    }

    println!(
        "\nIn overlapped mode the path should be almost pure compute (hidden \
         comm leaves the path); run with --sequential to watch the \
         collectives join it."
    );
    Ok(())
}
