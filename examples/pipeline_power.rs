//! Pipeline-parallel power anatomy: runs GPT-3 2.7B with GPipe on a 4×A100
//! node, prints the per-stage utilization and a coarse power trace with the
//! compute/communication overlap windows marked (a small-scale Fig. 7).
//!
//! ```sh
//! cargo run --release -p olab-core --example pipeline_power
//! ```

use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_power::Sampler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = Experiment::new(
        SkuKind::A100,
        4,
        ModelPreset::Gpt3_2_7B,
        Strategy::Pipeline { microbatch_size: 8 },
        32,
    );
    println!("experiment: {exp} (4 microbatches)\n");
    let report = exp.run()?;
    let run = &report.overlapped;
    let tdp = report.tdp_w();

    println!("-- per-stage anatomy --");
    for (s, gpu) in run.gpus.iter().enumerate() {
        let busy = gpu.compute_s / run.e2e_s;
        println!(
            "stage {s}: compute {:7.1} ms ({:4.1}% busy), comm {:6.1} ms, \
             avg power {:.2}x TDP",
            gpu.compute_s * 1e3,
            busy * 100.0,
            gpu.comm_s * 1e3,
            gpu.power.average() / tdp
        );
    }
    println!(
        "\npipeline bubble: stage 0 is busy {:.1}% of the iteration — GPipe's \
         flush cost",
        run.gpus[0].compute_s / run.e2e_s * 100.0
    );

    println!("\n-- stage-0 power trace (20 ms sampling) --");
    let sampled = run.gpus[0].power.sample(Sampler::amd_smi());
    let windows = &run.gpus[0].overlap_windows;
    let in_overlap = |t: f64| windows.iter().any(|&(a, b)| t >= a && t < b);
    for s in sampled.samples.iter().take(40) {
        let bar_len = (s.watts / tdp * 40.0).round() as usize;
        println!(
            "{:7.1} ms {:>6.2}x TDP |{}{}",
            s.time_s * 1e3,
            s.watts / tdp,
            "#".repeat(bar_len.min(60)),
            if in_overlap(s.time_s) {
                "  <- overlap"
            } else {
                ""
            }
        );
    }

    println!(
        "\nmetrics: overlap ratio {:.1}%, compute slowdown {:.1}%, \
         E2E {:.1} ms (sequential {:.1} ms)",
        report.metrics.overlap_ratio * 100.0,
        report.metrics.compute_slowdown * 100.0,
        report.metrics.e2e_overlapped_s * 1e3,
        report.metrics.e2e_sequential_measured_s * 1e3
    );
    Ok(())
}
