//! FSDP characterization sweep: how compute slowdown and overlap change
//! with model size and batch size on one SKU (default MI250, the paper's
//! most contention-prone part).
//!
//! ```sh
//! cargo run --release -p olab-core --example fsdp_training [A100|H100|MI210|MI250]
//! ```

use olab_core::report::{ms, pct, Table};
use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() {
    let sku = match std::env::args().nth(1).as_deref() {
        Some("A100") => SkuKind::A100,
        Some("H100") => SkuKind::H100,
        Some("MI210") => SkuKind::Mi210,
        Some("MI250") | None => SkuKind::Mi250,
        Some(other) => {
            eprintln!("unknown SKU {other}; use A100|H100|MI210|MI250");
            std::process::exit(2);
        }
    };

    println!("FSDP characterization on 4x{sku}\n");
    let mut table = Table::new([
        "Model",
        "Batch/GPU",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "E2E sequential",
        "Overlap benefit",
    ]);

    for model in ModelPreset::ALL {
        for batch in [8u64, 16, 32] {
            let exp = Experiment::new(sku, 4, model, Strategy::Fsdp, batch);
            match exp.run() {
                Ok(r) => {
                    table.row([
                        model.config().name.to_string(),
                        batch.to_string(),
                        pct(r.metrics.overlap_ratio),
                        pct(r.metrics.compute_slowdown),
                        ms(r.metrics.e2e_overlapped_s),
                        ms(r.metrics.e2e_sequential_measured_s),
                        pct(r.metrics.sequential_vs_overlapped()),
                    ]);
                }
                Err(e) => {
                    table.row([
                        model.config().name.to_string(),
                        batch.to_string(),
                        format!("{e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    print!("{}", table.to_markdown());
    println!(
        "\nTakeaway 2: larger models raise contention; larger batches dilute it \
         (compute grows, communication stays constant)."
    );
}
