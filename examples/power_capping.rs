//! Power- and frequency-capping study (the paper's Fig. 9 plus the
//! frequency-capping trade-off the conclusion mentions): sweeps caps on a
//! 4×A100 node and reports the performance/energy frontier.
//!
//! ```sh
//! cargo run --release -p olab-core --example power_capping
//! ```

use olab_core::report::{ms, pct, Table};
use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn base() -> Experiment {
    Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stock = base().run()?;
    let e2e0 = stock.metrics.e2e_overlapped_s;
    let energy0 = stock.metrics.energy_j;

    println!("== power capping (strict, nvidia-smi style) ==\n");
    let mut table = Table::new([
        "Cap (W)",
        "E2E",
        "Slowdown",
        "Energy/iter",
        "Energy saved",
        "Avg power",
    ]);
    for cap in [400.0, 300.0, 250.0, 200.0, 150.0, 100.0] {
        let r = base().with_power_cap(cap).run()?;
        table.row([
            format!("{cap:.0}"),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
            format!("{:.0} W", r.metrics.avg_power_w),
        ]);
    }
    print!("{}", table.to_markdown());

    println!("\n== frequency capping (nvidia-smi -lgc style) ==\n");
    let mut table = Table::new([
        "Clock cap",
        "E2E",
        "Slowdown",
        "Energy/iter",
        "Energy saved",
    ]);
    for f in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let r = base().with_freq_cap(f).run()?;
        table.row([
            format!("{:.0}%", f * 100.0),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
        ]);
    }
    print!("{}", table.to_markdown());

    println!(
        "\nTakeaway 5: caps save energy superlinearly at first (P ~ f^2.2) but \
         under strict limits overlapped execution pays a compounding latency cost."
    );
    Ok(())
}
