//! Mixture-of-Experts all-to-all overlap (the Tutel/Lancet optimization
//! from the paper's related work): compares un-chunked dispatch against
//! 2- and 4-way chunking, where chunk c+1's all-to-all hides under chunk
//! c's expert compute.
//!
//! ```sh
//! cargo run --release -p olab-core --example moe_overlap
//! ```

use olab_core::{execute, Machine};
use olab_gpu::{Datapath, GpuSku, Precision};
use olab_models::ModelPreset;
use olab_parallel::{moe, ExecutionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sku = GpuSku::mi250();
    let machine = Machine::stock(sku.clone(), 4);
    let topo = machine.config().topology.clone();

    println!(
        "MoE GPT-3 XL (8 experts, every 2nd layer) on 4x{}\n",
        sku.name
    );
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "chunks", "E2E (ms)", "a2a total (ms)", "a2a hidden", "vs chunks=1"
    );

    let mut baseline = None;
    for chunks in [1u32, 2, 4, 8] {
        let plan = moe::MoePlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 8,
            seq: 1024,
            experts: 8,
            moe_every: 2,
            chunks,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
        };
        let w = moe::moe_timeline(&plan, &sku, &topo, ExecutionMode::Overlapped);
        let run = execute(&w, &machine)?;
        let e2e = run.e2e_s;
        let comm = run.comm_s() / 4.0;
        let hidden = if comm > 0.0 {
            run.hidden_comm_s() / 4.0 / comm
        } else {
            0.0
        };
        let gain = baseline
            .map(|b: f64| format!("{:+.1}%", (b / e2e - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".into());
        if baseline.is_none() {
            baseline = Some(e2e);
        }
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>13.1}% {:>12}",
            chunks,
            e2e * 1e3,
            comm * 1e3,
            hidden * 100.0,
            gain
        );
    }

    println!(
        "\nChunking turns exposed all-to-alls into hidden ones — the Tutel\n\
         optimization — at the cost of smaller, less efficient transfers."
    );
    Ok(())
}
