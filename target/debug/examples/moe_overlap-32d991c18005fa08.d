/root/repo/target/debug/examples/moe_overlap-32d991c18005fa08.d: crates/core/../../examples/moe_overlap.rs

/root/repo/target/debug/examples/moe_overlap-32d991c18005fa08: crates/core/../../examples/moe_overlap.rs

crates/core/../../examples/moe_overlap.rs:
