/root/repo/target/debug/examples/power_capping-d1322937660e2dc5.d: crates/core/../../examples/power_capping.rs

/root/repo/target/debug/examples/power_capping-d1322937660e2dc5: crates/core/../../examples/power_capping.rs

crates/core/../../examples/power_capping.rs:
