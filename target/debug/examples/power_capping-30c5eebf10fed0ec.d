/root/repo/target/debug/examples/power_capping-30c5eebf10fed0ec.d: crates/core/../../examples/power_capping.rs Cargo.toml

/root/repo/target/debug/examples/libpower_capping-30c5eebf10fed0ec.rmeta: crates/core/../../examples/power_capping.rs Cargo.toml

crates/core/../../examples/power_capping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
