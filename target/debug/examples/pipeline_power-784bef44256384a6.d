/root/repo/target/debug/examples/pipeline_power-784bef44256384a6.d: crates/core/../../examples/pipeline_power.rs

/root/repo/target/debug/examples/pipeline_power-784bef44256384a6: crates/core/../../examples/pipeline_power.rs

crates/core/../../examples/pipeline_power.rs:
