/root/repo/target/debug/examples/fsdp_training-ff7db09a87da4c76.d: crates/core/../../examples/fsdp_training.rs

/root/repo/target/debug/examples/fsdp_training-ff7db09a87da4c76: crates/core/../../examples/fsdp_training.rs

crates/core/../../examples/fsdp_training.rs:
