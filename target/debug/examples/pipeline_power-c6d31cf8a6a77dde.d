/root/repo/target/debug/examples/pipeline_power-c6d31cf8a6a77dde.d: crates/core/../../examples/pipeline_power.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_power-c6d31cf8a6a77dde.rmeta: crates/core/../../examples/pipeline_power.rs Cargo.toml

crates/core/../../examples/pipeline_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
