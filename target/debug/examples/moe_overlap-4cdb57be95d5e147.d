/root/repo/target/debug/examples/moe_overlap-4cdb57be95d5e147.d: crates/core/../../examples/moe_overlap.rs Cargo.toml

/root/repo/target/debug/examples/libmoe_overlap-4cdb57be95d5e147.rmeta: crates/core/../../examples/moe_overlap.rs Cargo.toml

crates/core/../../examples/moe_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
