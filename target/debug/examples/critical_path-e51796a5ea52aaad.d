/root/repo/target/debug/examples/critical_path-e51796a5ea52aaad.d: crates/core/../../examples/critical_path.rs

/root/repo/target/debug/examples/critical_path-e51796a5ea52aaad: crates/core/../../examples/critical_path.rs

crates/core/../../examples/critical_path.rs:
