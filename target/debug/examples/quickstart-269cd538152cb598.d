/root/repo/target/debug/examples/quickstart-269cd538152cb598.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-269cd538152cb598: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
