/root/repo/target/debug/examples/fsdp_training-b4588b8320cf79d9.d: crates/core/../../examples/fsdp_training.rs Cargo.toml

/root/repo/target/debug/examples/libfsdp_training-b4588b8320cf79d9.rmeta: crates/core/../../examples/fsdp_training.rs Cargo.toml

crates/core/../../examples/fsdp_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
