/root/repo/target/debug/examples/critical_path-3b851cfc2f715b2a.d: crates/core/../../examples/critical_path.rs Cargo.toml

/root/repo/target/debug/examples/libcritical_path-3b851cfc2f715b2a.rmeta: crates/core/../../examples/critical_path.rs Cargo.toml

crates/core/../../examples/critical_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
