/root/repo/target/debug/examples/quickstart-44e483f2a428a29b.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-44e483f2a428a29b.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
