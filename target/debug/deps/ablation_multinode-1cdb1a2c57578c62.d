/root/repo/target/debug/deps/ablation_multinode-1cdb1a2c57578c62.d: crates/bench/src/bin/ablation_multinode.rs Cargo.toml

/root/repo/target/debug/deps/libablation_multinode-1cdb1a2c57578c62.rmeta: crates/bench/src/bin/ablation_multinode.rs Cargo.toml

crates/bench/src/bin/ablation_multinode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
