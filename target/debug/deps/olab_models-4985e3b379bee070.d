/root/repo/target/debug/deps/olab_models-4985e3b379bee070.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libolab_models-4985e3b379bee070.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/memory.rs:
crates/models/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
