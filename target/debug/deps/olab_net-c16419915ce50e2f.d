/root/repo/target/debug/deps/olab_net-c16419915ce50e2f.d: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libolab_net-c16419915ce50e2f.rmeta: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/flow.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
