/root/repo/target/debug/deps/olab_gpu-20c042ab160fae2c.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

/root/repo/target/debug/deps/olab_gpu-20c042ab160fae2c: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/dvfs.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/power.rs:
crates/gpu/src/precision.rs:
crates/gpu/src/roofline.rs:
crates/gpu/src/sku.rs:
