/root/repo/target/debug/deps/olab_ccl-6820479ec9a48228.d: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

/root/repo/target/debug/deps/libolab_ccl-6820479ec9a48228.rlib: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

/root/repo/target/debug/deps/libolab_ccl-6820479ec9a48228.rmeta: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

crates/ccl/src/lib.rs:
crates/ccl/src/algorithm.rs:
crates/ccl/src/channels.rs:
crates/ccl/src/collective.rs:
crates/ccl/src/lowering.rs:
