/root/repo/target/debug/deps/ablation_schedule-e97f4768ed8aac9a.d: crates/bench/src/bin/ablation_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libablation_schedule-e97f4768ed8aac9a.rmeta: crates/bench/src/bin/ablation_schedule.rs Cargo.toml

crates/bench/src/bin/ablation_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
