/root/repo/target/debug/deps/fig8-0599e8191254bb98.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0599e8191254bb98: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
