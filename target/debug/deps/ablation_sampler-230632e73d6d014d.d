/root/repo/target/debug/deps/ablation_sampler-230632e73d6d014d.d: crates/bench/src/bin/ablation_sampler.rs

/root/repo/target/debug/deps/ablation_sampler-230632e73d6d014d: crates/bench/src/bin/ablation_sampler.rs

crates/bench/src/bin/ablation_sampler.rs:
