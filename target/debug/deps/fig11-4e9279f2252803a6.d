/root/repo/target/debug/deps/fig11-4e9279f2252803a6.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-4e9279f2252803a6: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
