/root/repo/target/debug/deps/olab_sim-281695abf498006e.d: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

/root/repo/target/debug/deps/olab_sim-281695abf498006e: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

crates/sim/src/lib.rs:
crates/sim/src/critical.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/ids.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/verify.rs:
