/root/repo/target/debug/deps/olab_ccl-0256484fa0bec5a7.d: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs Cargo.toml

/root/repo/target/debug/deps/libolab_ccl-0256484fa0bec5a7.rmeta: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs Cargo.toml

crates/ccl/src/lib.rs:
crates/ccl/src/algorithm.rs:
crates/ccl/src/channels.rs:
crates/ccl/src/collective.rs:
crates/ccl/src/lowering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
