/root/repo/target/debug/deps/fig5-35709eefc0fc5165.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-35709eefc0fc5165: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
