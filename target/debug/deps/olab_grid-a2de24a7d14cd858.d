/root/repo/target/debug/deps/olab_grid-a2de24a7d14cd858.d: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libolab_grid-a2de24a7d14cd858.rmeta: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/cache.rs:
crates/grid/src/hash.rs:
crates/grid/src/pool.rs:
crates/grid/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
