/root/repo/target/debug/deps/fig6-334eba34daf46366.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-334eba34daf46366: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
