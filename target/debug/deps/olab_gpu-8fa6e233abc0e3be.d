/root/repo/target/debug/deps/olab_gpu-8fa6e233abc0e3be.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

/root/repo/target/debug/deps/libolab_gpu-8fa6e233abc0e3be.rlib: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

/root/repo/target/debug/deps/libolab_gpu-8fa6e233abc0e3be.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/dvfs.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/power.rs:
crates/gpu/src/precision.rs:
crates/gpu/src/roofline.rs:
crates/gpu/src/sku.rs:
