/root/repo/target/debug/deps/integration_paper_trends-a33643f77e0dbadc.d: crates/core/../../tests/integration_paper_trends.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_paper_trends-a33643f77e0dbadc.rmeta: crates/core/../../tests/integration_paper_trends.rs Cargo.toml

crates/core/../../tests/integration_paper_trends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
