/root/repo/target/debug/deps/olab_core-83c479aeec53066c.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libolab_core-83c479aeec53066c.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libolab_core-83c479aeec53066c.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/analytic.rs:
crates/core/src/chrome_trace.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/microbench.rs:
crates/core/src/registry.rs:
crates/core/src/report.rs:
crates/core/src/sweep.rs:
