/root/repo/target/debug/deps/olab_parallel-66ee236a7b020b42.d: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs

/root/repo/target/debug/deps/olab_parallel-66ee236a7b020b42: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs

crates/parallel/src/lib.rs:
crates/parallel/src/builder.rs:
crates/parallel/src/fsdp.rs:
crates/parallel/src/mode.rs:
crates/parallel/src/moe.rs:
crates/parallel/src/op.rs:
crates/parallel/src/pipeline.rs:
crates/parallel/src/tensor.rs:
