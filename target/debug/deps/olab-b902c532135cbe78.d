/root/repo/target/debug/deps/olab-b902c532135cbe78.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/olab-b902c532135cbe78: crates/cli/src/main.rs

crates/cli/src/main.rs:
