/root/repo/target/debug/deps/olab_grid-291acd1eb67b93d8.d: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

/root/repo/target/debug/deps/olab_grid-291acd1eb67b93d8: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

crates/grid/src/lib.rs:
crates/grid/src/cache.rs:
crates/grid/src/hash.rs:
crates/grid/src/pool.rs:
crates/grid/src/telemetry.rs:
