/root/repo/target/debug/deps/ablation_sampler-e1e29c97ff559028.d: crates/bench/src/bin/ablation_sampler.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sampler-e1e29c97ff559028.rmeta: crates/bench/src/bin/ablation_sampler.rs Cargo.toml

crates/bench/src/bin/ablation_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
