/root/repo/target/debug/deps/ablation_freqcap-c49c149333c024e3.d: crates/bench/src/bin/ablation_freqcap.rs

/root/repo/target/debug/deps/ablation_freqcap-c49c149333c024e3: crates/bench/src/bin/ablation_freqcap.rs

crates/bench/src/bin/ablation_freqcap.rs:
