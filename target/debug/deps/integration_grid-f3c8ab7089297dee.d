/root/repo/target/debug/deps/integration_grid-f3c8ab7089297dee.d: crates/core/../../tests/integration_grid.rs

/root/repo/target/debug/deps/integration_grid-f3c8ab7089297dee: crates/core/../../tests/integration_grid.rs

crates/core/../../tests/integration_grid.rs:
