/root/repo/target/debug/deps/fig10-12bd7ed3b08892cf.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-12bd7ed3b08892cf: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
