/root/repo/target/debug/deps/integration_power-b70a2a27de2b9513.d: crates/core/../../tests/integration_power.rs

/root/repo/target/debug/deps/integration_power-b70a2a27de2b9513: crates/core/../../tests/integration_power.rs

crates/core/../../tests/integration_power.rs:
