/root/repo/target/debug/deps/olab_cli-f1d2c26c910240f2.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libolab_cli-f1d2c26c910240f2.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libolab_cli-f1d2c26c910240f2.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
