/root/repo/target/debug/deps/ablation_schedule-9ac60607b4f095e1.d: crates/bench/src/bin/ablation_schedule.rs

/root/repo/target/debug/deps/ablation_schedule-9ac60607b4f095e1: crates/bench/src/bin/ablation_schedule.rs

crates/bench/src/bin/ablation_schedule.rs:
