/root/repo/target/debug/deps/ablation_bandwidth-c3af029c271ddf73.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-c3af029c271ddf73: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
