/root/repo/target/debug/deps/integration_extensions-d1f95d1f13dac7f9.d: crates/core/../../tests/integration_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_extensions-d1f95d1f13dac7f9.rmeta: crates/core/../../tests/integration_extensions.rs Cargo.toml

crates/core/../../tests/integration_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
