/root/repo/target/debug/deps/olab_grid-4d2110e8fa9908ba.d: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

/root/repo/target/debug/deps/libolab_grid-4d2110e8fa9908ba.rlib: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

/root/repo/target/debug/deps/libolab_grid-4d2110e8fa9908ba.rmeta: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

crates/grid/src/lib.rs:
crates/grid/src/cache.rs:
crates/grid/src/hash.rs:
crates/grid/src/pool.rs:
crates/grid/src/telemetry.rs:
