/root/repo/target/debug/deps/integration_end_to_end-20f799945e7adc03.d: crates/core/../../tests/integration_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_end_to_end-20f799945e7adc03.rmeta: crates/core/../../tests/integration_end_to_end.rs Cargo.toml

crates/core/../../tests/integration_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
