/root/repo/target/debug/deps/olab_net-d9b4ae1a70596a2c.d: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libolab_net-d9b4ae1a70596a2c.rmeta: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/flow.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
