/root/repo/target/debug/deps/olab_core-a3255ad6ec1ea87b.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/olab_core-a3255ad6ec1ea87b: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/analytic.rs:
crates/core/src/chrome_trace.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/microbench.rs:
crates/core/src/registry.rs:
crates/core/src/report.rs:
crates/core/src/sweep.rs:
