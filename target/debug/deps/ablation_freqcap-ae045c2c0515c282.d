/root/repo/target/debug/deps/ablation_freqcap-ae045c2c0515c282.d: crates/bench/src/bin/ablation_freqcap.rs Cargo.toml

/root/repo/target/debug/deps/libablation_freqcap-ae045c2c0515c282.rmeta: crates/bench/src/bin/ablation_freqcap.rs Cargo.toml

crates/bench/src/bin/ablation_freqcap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
