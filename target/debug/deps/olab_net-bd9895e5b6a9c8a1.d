/root/repo/target/debug/deps/olab_net-bd9895e5b6a9c8a1.d: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/olab_net-bd9895e5b6a9c8a1: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/flow.rs:
crates/net/src/topology.rs:
