/root/repo/target/debug/deps/olab_net-0ad3964a3badcf03.d: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libolab_net-0ad3964a3badcf03.rlib: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libolab_net-0ad3964a3badcf03.rmeta: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/flow.rs:
crates/net/src/topology.rs:
