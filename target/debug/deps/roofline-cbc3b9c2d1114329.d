/root/repo/target/debug/deps/roofline-cbc3b9c2d1114329.d: crates/bench/src/bin/roofline.rs Cargo.toml

/root/repo/target/debug/deps/libroofline-cbc3b9c2d1114329.rmeta: crates/bench/src/bin/roofline.rs Cargo.toml

crates/bench/src/bin/roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
