/root/repo/target/debug/deps/integration_extensions-052d8f8bd8866c82.d: crates/core/../../tests/integration_extensions.rs

/root/repo/target/debug/deps/integration_extensions-052d8f8bd8866c82: crates/core/../../tests/integration_extensions.rs

crates/core/../../tests/integration_extensions.rs:
