/root/repo/target/debug/deps/methodology-5c2715c0e11863aa.d: crates/bench/src/bin/methodology.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology-5c2715c0e11863aa.rmeta: crates/bench/src/bin/methodology.rs Cargo.toml

crates/bench/src/bin/methodology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
