/root/repo/target/debug/deps/olab-8e01b78bec8b0a8d.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libolab-8e01b78bec8b0a8d.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
