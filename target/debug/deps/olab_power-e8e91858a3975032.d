/root/repo/target/debug/deps/olab_power-e8e91858a3975032.d: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libolab_power-e8e91858a3975032.rmeta: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/sampler.rs:
crates/power/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
