/root/repo/target/debug/deps/olab_models-40664ead3fcf76a3.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

/root/repo/target/debug/deps/libolab_models-40664ead3fcf76a3.rlib: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

/root/repo/target/debug/deps/libolab_models-40664ead3fcf76a3.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/memory.rs:
crates/models/src/ops.rs:
