/root/repo/target/debug/deps/integration_grid-b81c97597f6d32df.d: crates/core/../../tests/integration_grid.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_grid-b81c97597f6d32df.rmeta: crates/core/../../tests/integration_grid.rs Cargo.toml

crates/core/../../tests/integration_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
