/root/repo/target/debug/deps/olab_cli-f6c8bdfd597f22e1.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/olab_cli-f6c8bdfd597f22e1: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
