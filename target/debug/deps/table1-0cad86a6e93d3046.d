/root/repo/target/debug/deps/table1-0cad86a6e93d3046.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0cad86a6e93d3046: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
