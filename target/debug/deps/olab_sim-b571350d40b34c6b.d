/root/repo/target/debug/deps/olab_sim-b571350d40b34c6b.d: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libolab_sim-b571350d40b34c6b.rmeta: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/critical.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/ids.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
