/root/repo/target/debug/deps/headline-880e16c8406e087f.d: crates/bench/src/bin/headline.rs

/root/repo/target/debug/deps/headline-880e16c8406e087f: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
