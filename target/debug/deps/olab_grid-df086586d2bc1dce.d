/root/repo/target/debug/deps/olab_grid-df086586d2bc1dce.d: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libolab_grid-df086586d2bc1dce.rmeta: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/cache.rs:
crates/grid/src/hash.rs:
crates/grid/src/pool.rs:
crates/grid/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
