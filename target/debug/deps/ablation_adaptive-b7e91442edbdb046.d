/root/repo/target/debug/deps/ablation_adaptive-b7e91442edbdb046.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/debug/deps/ablation_adaptive-b7e91442edbdb046: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:
