/root/repo/target/debug/deps/olab_bench-25302d15b6b0d1f0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolab_bench-25302d15b6b0d1f0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
