/root/repo/target/debug/deps/table2-e9c4aba475c69a81.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e9c4aba475c69a81: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
