/root/repo/target/debug/deps/integration_paper_trends-6fa22b6a70970df3.d: crates/core/../../tests/integration_paper_trends.rs

/root/repo/target/debug/deps/integration_paper_trends-6fa22b6a70970df3: crates/core/../../tests/integration_paper_trends.rs

crates/core/../../tests/integration_paper_trends.rs:
