/root/repo/target/debug/deps/ablation_strategy-252cfa8c48d30ed8.d: crates/bench/src/bin/ablation_strategy.rs

/root/repo/target/debug/deps/ablation_strategy-252cfa8c48d30ed8: crates/bench/src/bin/ablation_strategy.rs

crates/bench/src/bin/ablation_strategy.rs:
