/root/repo/target/debug/deps/olab_sim-511aac86530a3019.d: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

/root/repo/target/debug/deps/libolab_sim-511aac86530a3019.rlib: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

/root/repo/target/debug/deps/libolab_sim-511aac86530a3019.rmeta: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

crates/sim/src/lib.rs:
crates/sim/src/critical.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/ids.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/verify.rs:
