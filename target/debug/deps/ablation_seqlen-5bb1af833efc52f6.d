/root/repo/target/debug/deps/ablation_seqlen-5bb1af833efc52f6.d: crates/bench/src/bin/ablation_seqlen.rs Cargo.toml

/root/repo/target/debug/deps/libablation_seqlen-5bb1af833efc52f6.rmeta: crates/bench/src/bin/ablation_seqlen.rs Cargo.toml

crates/bench/src/bin/ablation_seqlen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
