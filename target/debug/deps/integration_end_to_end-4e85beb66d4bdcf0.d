/root/repo/target/debug/deps/integration_end_to_end-4e85beb66d4bdcf0.d: crates/core/../../tests/integration_end_to_end.rs

/root/repo/target/debug/deps/integration_end_to_end-4e85beb66d4bdcf0: crates/core/../../tests/integration_end_to_end.rs

crates/core/../../tests/integration_end_to_end.rs:
