/root/repo/target/debug/deps/integration_metrics-a0aac7471992562c.d: crates/core/../../tests/integration_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_metrics-a0aac7471992562c.rmeta: crates/core/../../tests/integration_metrics.rs Cargo.toml

crates/core/../../tests/integration_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
