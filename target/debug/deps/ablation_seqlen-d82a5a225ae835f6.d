/root/repo/target/debug/deps/ablation_seqlen-d82a5a225ae835f6.d: crates/bench/src/bin/ablation_seqlen.rs

/root/repo/target/debug/deps/ablation_seqlen-d82a5a225ae835f6: crates/bench/src/bin/ablation_seqlen.rs

crates/bench/src/bin/ablation_seqlen.rs:
