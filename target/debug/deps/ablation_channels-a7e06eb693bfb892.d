/root/repo/target/debug/deps/ablation_channels-a7e06eb693bfb892.d: crates/bench/src/bin/ablation_channels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_channels-a7e06eb693bfb892.rmeta: crates/bench/src/bin/ablation_channels.rs Cargo.toml

crates/bench/src/bin/ablation_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
