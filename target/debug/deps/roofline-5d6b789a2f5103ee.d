/root/repo/target/debug/deps/roofline-5d6b789a2f5103ee.d: crates/bench/src/bin/roofline.rs

/root/repo/target/debug/deps/roofline-5d6b789a2f5103ee: crates/bench/src/bin/roofline.rs

crates/bench/src/bin/roofline.rs:
