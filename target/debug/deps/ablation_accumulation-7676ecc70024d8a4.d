/root/repo/target/debug/deps/ablation_accumulation-7676ecc70024d8a4.d: crates/bench/src/bin/ablation_accumulation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_accumulation-7676ecc70024d8a4.rmeta: crates/bench/src/bin/ablation_accumulation.rs Cargo.toml

crates/bench/src/bin/ablation_accumulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
