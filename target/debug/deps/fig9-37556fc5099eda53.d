/root/repo/target/debug/deps/fig9-37556fc5099eda53.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-37556fc5099eda53: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
