/root/repo/target/debug/deps/ablation_sampler-7258a42c566f646e.d: crates/bench/src/bin/ablation_sampler.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sampler-7258a42c566f646e.rmeta: crates/bench/src/bin/ablation_sampler.rs Cargo.toml

crates/bench/src/bin/ablation_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
