/root/repo/target/debug/deps/olab_ccl-a16b7823286257aa.d: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

/root/repo/target/debug/deps/olab_ccl-a16b7823286257aa: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

crates/ccl/src/lib.rs:
crates/ccl/src/algorithm.rs:
crates/ccl/src/channels.rs:
crates/ccl/src/collective.rs:
crates/ccl/src/lowering.rs:
