/root/repo/target/debug/deps/ablation_multinode-3629ccb48c003863.d: crates/bench/src/bin/ablation_multinode.rs Cargo.toml

/root/repo/target/debug/deps/libablation_multinode-3629ccb48c003863.rmeta: crates/bench/src/bin/ablation_multinode.rs Cargo.toml

crates/bench/src/bin/ablation_multinode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
