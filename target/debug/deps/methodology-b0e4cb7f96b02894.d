/root/repo/target/debug/deps/methodology-b0e4cb7f96b02894.d: crates/bench/src/bin/methodology.rs

/root/repo/target/debug/deps/methodology-b0e4cb7f96b02894: crates/bench/src/bin/methodology.rs

crates/bench/src/bin/methodology.rs:
