/root/repo/target/debug/deps/olab_power-956b5253646dcfd8.d: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

/root/repo/target/debug/deps/libolab_power-956b5253646dcfd8.rlib: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

/root/repo/target/debug/deps/libolab_power-956b5253646dcfd8.rmeta: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

crates/power/src/lib.rs:
crates/power/src/sampler.rs:
crates/power/src/trace.rs:
