/root/repo/target/debug/deps/olab_bench-9ca2240ca6d1af2a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolab_bench-9ca2240ca6d1af2a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolab_bench-9ca2240ca6d1af2a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
