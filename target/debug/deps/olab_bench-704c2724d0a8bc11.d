/root/repo/target/debug/deps/olab_bench-704c2724d0a8bc11.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/olab_bench-704c2724d0a8bc11: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
