/root/repo/target/debug/deps/ablation_strategy-7a9e128c04bb8383.d: crates/bench/src/bin/ablation_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_strategy-7a9e128c04bb8383.rmeta: crates/bench/src/bin/ablation_strategy.rs Cargo.toml

crates/bench/src/bin/ablation_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
