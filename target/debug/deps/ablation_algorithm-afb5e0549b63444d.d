/root/repo/target/debug/deps/ablation_algorithm-afb5e0549b63444d.d: crates/bench/src/bin/ablation_algorithm.rs

/root/repo/target/debug/deps/ablation_algorithm-afb5e0549b63444d: crates/bench/src/bin/ablation_algorithm.rs

crates/bench/src/bin/ablation_algorithm.rs:
