/root/repo/target/debug/deps/olab_parallel-633137bd6cd94dca.d: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libolab_parallel-633137bd6cd94dca.rmeta: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/builder.rs:
crates/parallel/src/fsdp.rs:
crates/parallel/src/mode.rs:
crates/parallel/src/moe.rs:
crates/parallel/src/op.rs:
crates/parallel/src/pipeline.rs:
crates/parallel/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
