/root/repo/target/debug/deps/ablation_accumulation-d0c8a322855810ad.d: crates/bench/src/bin/ablation_accumulation.rs

/root/repo/target/debug/deps/ablation_accumulation-d0c8a322855810ad: crates/bench/src/bin/ablation_accumulation.rs

crates/bench/src/bin/ablation_accumulation.rs:
