/root/repo/target/debug/deps/integration_power-d10aa5b168e87c55.d: crates/core/../../tests/integration_power.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_power-d10aa5b168e87c55.rmeta: crates/core/../../tests/integration_power.rs Cargo.toml

crates/core/../../tests/integration_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
