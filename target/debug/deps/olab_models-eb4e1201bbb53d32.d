/root/repo/target/debug/deps/olab_models-eb4e1201bbb53d32.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

/root/repo/target/debug/deps/olab_models-eb4e1201bbb53d32: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/memory.rs:
crates/models/src/ops.rs:
