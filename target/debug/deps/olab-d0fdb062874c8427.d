/root/repo/target/debug/deps/olab-d0fdb062874c8427.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libolab-d0fdb062874c8427.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
