/root/repo/target/debug/deps/ablation_channels-51bb7785d5b465a2.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/ablation_channels-51bb7785d5b465a2: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
