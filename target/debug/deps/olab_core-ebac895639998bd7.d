/root/repo/target/debug/deps/olab_core-ebac895639998bd7.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libolab_core-ebac895639998bd7.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/analytic.rs:
crates/core/src/chrome_trace.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/microbench.rs:
crates/core/src/registry.rs:
crates/core/src/report.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
