/root/repo/target/debug/deps/olab_ccl-8f7d3c2373dda14d.d: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs Cargo.toml

/root/repo/target/debug/deps/libolab_ccl-8f7d3c2373dda14d.rmeta: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs Cargo.toml

crates/ccl/src/lib.rs:
crates/ccl/src/algorithm.rs:
crates/ccl/src/channels.rs:
crates/ccl/src/collective.rs:
crates/ccl/src/lowering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
