/root/repo/target/debug/deps/integration_metrics-176eb76a278007bd.d: crates/core/../../tests/integration_metrics.rs

/root/repo/target/debug/deps/integration_metrics-176eb76a278007bd: crates/core/../../tests/integration_metrics.rs

crates/core/../../tests/integration_metrics.rs:
