/root/repo/target/debug/deps/olab_gpu-3d0e7909875eb421.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs Cargo.toml

/root/repo/target/debug/deps/libolab_gpu-3d0e7909875eb421.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/dvfs.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/power.rs:
crates/gpu/src/precision.rs:
crates/gpu/src/roofline.rs:
crates/gpu/src/sku.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
