/root/repo/target/debug/deps/olab_sim-79642b4d0b469121.d: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libolab_sim-79642b4d0b469121.rmeta: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/critical.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/ids.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
