/root/repo/target/debug/deps/fig1-33ae930204d43b62.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-33ae930204d43b62: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
