/root/repo/target/debug/deps/headline-07f3c4dff8541dfe.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/debug/deps/libheadline-07f3c4dff8541dfe.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
