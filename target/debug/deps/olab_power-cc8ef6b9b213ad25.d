/root/repo/target/debug/deps/olab_power-cc8ef6b9b213ad25.d: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

/root/repo/target/debug/deps/olab_power-cc8ef6b9b213ad25: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

crates/power/src/lib.rs:
crates/power/src/sampler.rs:
crates/power/src/trace.rs:
