/root/repo/target/debug/deps/ablation_algorithm-5cebec2310f8aa3f.d: crates/bench/src/bin/ablation_algorithm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_algorithm-5cebec2310f8aa3f.rmeta: crates/bench/src/bin/ablation_algorithm.rs Cargo.toml

crates/bench/src/bin/ablation_algorithm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
