/root/repo/target/debug/deps/fig4-ce4a2d8af9815e5c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ce4a2d8af9815e5c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
