/root/repo/target/debug/deps/methodology-8b7b8dde57b7d76c.d: crates/bench/src/bin/methodology.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology-8b7b8dde57b7d76c.rmeta: crates/bench/src/bin/methodology.rs Cargo.toml

crates/bench/src/bin/methodology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
