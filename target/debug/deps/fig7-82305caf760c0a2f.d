/root/repo/target/debug/deps/fig7-82305caf760c0a2f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-82305caf760c0a2f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
