/root/repo/target/debug/deps/headline-01370a81868899a4.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/debug/deps/libheadline-01370a81868899a4.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
