/root/repo/target/debug/deps/ablation_multinode-07565c744b53605c.d: crates/bench/src/bin/ablation_multinode.rs

/root/repo/target/debug/deps/ablation_multinode-07565c744b53605c: crates/bench/src/bin/ablation_multinode.rs

crates/bench/src/bin/ablation_multinode.rs:
