/root/repo/target/debug/deps/ablation_strategy-f712b17cd902a4d7.d: crates/bench/src/bin/ablation_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_strategy-f712b17cd902a4d7.rmeta: crates/bench/src/bin/ablation_strategy.rs Cargo.toml

crates/bench/src/bin/ablation_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
