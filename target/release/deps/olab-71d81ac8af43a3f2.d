/root/repo/target/release/deps/olab-71d81ac8af43a3f2.d: crates/cli/src/main.rs

/root/repo/target/release/deps/olab-71d81ac8af43a3f2: crates/cli/src/main.rs

crates/cli/src/main.rs:
