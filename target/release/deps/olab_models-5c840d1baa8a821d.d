/root/repo/target/release/deps/olab_models-5c840d1baa8a821d.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

/root/repo/target/release/deps/libolab_models-5c840d1baa8a821d.rlib: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

/root/repo/target/release/deps/libolab_models-5c840d1baa8a821d.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/memory.rs crates/models/src/ops.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/memory.rs:
crates/models/src/ops.rs:
