/root/repo/target/release/deps/ablation_adaptive-fbacd04582822ecb.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/release/deps/ablation_adaptive-fbacd04582822ecb: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:
