/root/repo/target/release/deps/fig7-d109bc85f32faf45.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-d109bc85f32faf45: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
