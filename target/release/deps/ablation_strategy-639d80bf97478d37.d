/root/repo/target/release/deps/ablation_strategy-639d80bf97478d37.d: crates/bench/src/bin/ablation_strategy.rs

/root/repo/target/release/deps/ablation_strategy-639d80bf97478d37: crates/bench/src/bin/ablation_strategy.rs

crates/bench/src/bin/ablation_strategy.rs:
