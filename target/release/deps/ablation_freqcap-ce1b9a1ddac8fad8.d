/root/repo/target/release/deps/ablation_freqcap-ce1b9a1ddac8fad8.d: crates/bench/src/bin/ablation_freqcap.rs

/root/repo/target/release/deps/ablation_freqcap-ce1b9a1ddac8fad8: crates/bench/src/bin/ablation_freqcap.rs

crates/bench/src/bin/ablation_freqcap.rs:
