/root/repo/target/release/deps/fig9-e82990515c437c78.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-e82990515c437c78: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
