/root/repo/target/release/deps/olab_gpu-5f36d58db2fb7262.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

/root/repo/target/release/deps/libolab_gpu-5f36d58db2fb7262.rlib: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

/root/repo/target/release/deps/libolab_gpu-5f36d58db2fb7262.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/dvfs.rs crates/gpu/src/kernel.rs crates/gpu/src/power.rs crates/gpu/src/precision.rs crates/gpu/src/roofline.rs crates/gpu/src/sku.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/dvfs.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/power.rs:
crates/gpu/src/precision.rs:
crates/gpu/src/roofline.rs:
crates/gpu/src/sku.rs:
