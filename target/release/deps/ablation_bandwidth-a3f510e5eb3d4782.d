/root/repo/target/release/deps/ablation_bandwidth-a3f510e5eb3d4782.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/release/deps/ablation_bandwidth-a3f510e5eb3d4782: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
