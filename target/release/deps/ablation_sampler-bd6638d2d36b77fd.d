/root/repo/target/release/deps/ablation_sampler-bd6638d2d36b77fd.d: crates/bench/src/bin/ablation_sampler.rs

/root/repo/target/release/deps/ablation_sampler-bd6638d2d36b77fd: crates/bench/src/bin/ablation_sampler.rs

crates/bench/src/bin/ablation_sampler.rs:
