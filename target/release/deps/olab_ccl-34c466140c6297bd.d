/root/repo/target/release/deps/olab_ccl-34c466140c6297bd.d: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

/root/repo/target/release/deps/libolab_ccl-34c466140c6297bd.rlib: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

/root/repo/target/release/deps/libolab_ccl-34c466140c6297bd.rmeta: crates/ccl/src/lib.rs crates/ccl/src/algorithm.rs crates/ccl/src/channels.rs crates/ccl/src/collective.rs crates/ccl/src/lowering.rs

crates/ccl/src/lib.rs:
crates/ccl/src/algorithm.rs:
crates/ccl/src/channels.rs:
crates/ccl/src/collective.rs:
crates/ccl/src/lowering.rs:
