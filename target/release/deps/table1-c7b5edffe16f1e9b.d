/root/repo/target/release/deps/table1-c7b5edffe16f1e9b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-c7b5edffe16f1e9b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
