/root/repo/target/release/deps/olab_core-82fda0cc04fa70e5.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libolab_core-82fda0cc04fa70e5.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libolab_core-82fda0cc04fa70e5.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/analytic.rs crates/core/src/chrome_trace.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/microbench.rs crates/core/src/registry.rs crates/core/src/report.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/analytic.rs:
crates/core/src/chrome_trace.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/microbench.rs:
crates/core/src/registry.rs:
crates/core/src/report.rs:
crates/core/src/sweep.rs:
