/root/repo/target/release/deps/headline-1e783e32109ddfca.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-1e783e32109ddfca: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
