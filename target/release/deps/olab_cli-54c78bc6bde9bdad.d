/root/repo/target/release/deps/olab_cli-54c78bc6bde9bdad.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libolab_cli-54c78bc6bde9bdad.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libolab_cli-54c78bc6bde9bdad.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
