/root/repo/target/release/deps/fig10-616a49c5ad4546fa.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-616a49c5ad4546fa: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
