/root/repo/target/release/deps/fig1-03a27986e76af160.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-03a27986e76af160: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
