/root/repo/target/release/deps/olab_parallel-1ef139a77d025cc5.d: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs

/root/repo/target/release/deps/libolab_parallel-1ef139a77d025cc5.rlib: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs

/root/repo/target/release/deps/libolab_parallel-1ef139a77d025cc5.rmeta: crates/parallel/src/lib.rs crates/parallel/src/builder.rs crates/parallel/src/fsdp.rs crates/parallel/src/mode.rs crates/parallel/src/moe.rs crates/parallel/src/op.rs crates/parallel/src/pipeline.rs crates/parallel/src/tensor.rs

crates/parallel/src/lib.rs:
crates/parallel/src/builder.rs:
crates/parallel/src/fsdp.rs:
crates/parallel/src/mode.rs:
crates/parallel/src/moe.rs:
crates/parallel/src/op.rs:
crates/parallel/src/pipeline.rs:
crates/parallel/src/tensor.rs:
