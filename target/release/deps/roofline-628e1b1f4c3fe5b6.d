/root/repo/target/release/deps/roofline-628e1b1f4c3fe5b6.d: crates/bench/src/bin/roofline.rs

/root/repo/target/release/deps/roofline-628e1b1f4c3fe5b6: crates/bench/src/bin/roofline.rs

crates/bench/src/bin/roofline.rs:
