/root/repo/target/release/deps/fig4-08a360737448fb3c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-08a360737448fb3c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
