/root/repo/target/release/deps/ablation_schedule-1c740d587fb69502.d: crates/bench/src/bin/ablation_schedule.rs

/root/repo/target/release/deps/ablation_schedule-1c740d587fb69502: crates/bench/src/bin/ablation_schedule.rs

crates/bench/src/bin/ablation_schedule.rs:
