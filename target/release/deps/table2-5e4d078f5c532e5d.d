/root/repo/target/release/deps/table2-5e4d078f5c532e5d.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-5e4d078f5c532e5d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
