/root/repo/target/release/deps/ablation_accumulation-b8e2b3f96e385487.d: crates/bench/src/bin/ablation_accumulation.rs

/root/repo/target/release/deps/ablation_accumulation-b8e2b3f96e385487: crates/bench/src/bin/ablation_accumulation.rs

crates/bench/src/bin/ablation_accumulation.rs:
