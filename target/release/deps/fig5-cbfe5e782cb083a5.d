/root/repo/target/release/deps/fig5-cbfe5e782cb083a5.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-cbfe5e782cb083a5: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
