/root/repo/target/release/deps/ablation_channels-6774074ac5b9ada2.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/release/deps/ablation_channels-6774074ac5b9ada2: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
