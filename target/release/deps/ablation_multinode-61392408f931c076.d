/root/repo/target/release/deps/ablation_multinode-61392408f931c076.d: crates/bench/src/bin/ablation_multinode.rs

/root/repo/target/release/deps/ablation_multinode-61392408f931c076: crates/bench/src/bin/ablation_multinode.rs

crates/bench/src/bin/ablation_multinode.rs:
