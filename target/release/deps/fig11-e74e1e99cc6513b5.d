/root/repo/target/release/deps/fig11-e74e1e99cc6513b5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-e74e1e99cc6513b5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
