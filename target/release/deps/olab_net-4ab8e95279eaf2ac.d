/root/repo/target/release/deps/olab_net-4ab8e95279eaf2ac.d: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libolab_net-4ab8e95279eaf2ac.rlib: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libolab_net-4ab8e95279eaf2ac.rmeta: crates/net/src/lib.rs crates/net/src/flow.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/flow.rs:
crates/net/src/topology.rs:
