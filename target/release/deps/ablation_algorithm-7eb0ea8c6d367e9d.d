/root/repo/target/release/deps/ablation_algorithm-7eb0ea8c6d367e9d.d: crates/bench/src/bin/ablation_algorithm.rs

/root/repo/target/release/deps/ablation_algorithm-7eb0ea8c6d367e9d: crates/bench/src/bin/ablation_algorithm.rs

crates/bench/src/bin/ablation_algorithm.rs:
