/root/repo/target/release/deps/olab_grid-7ba9b5c1ed64015a.d: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

/root/repo/target/release/deps/libolab_grid-7ba9b5c1ed64015a.rlib: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

/root/repo/target/release/deps/libolab_grid-7ba9b5c1ed64015a.rmeta: crates/grid/src/lib.rs crates/grid/src/cache.rs crates/grid/src/hash.rs crates/grid/src/pool.rs crates/grid/src/telemetry.rs

crates/grid/src/lib.rs:
crates/grid/src/cache.rs:
crates/grid/src/hash.rs:
crates/grid/src/pool.rs:
crates/grid/src/telemetry.rs:
