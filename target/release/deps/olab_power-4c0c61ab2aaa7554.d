/root/repo/target/release/deps/olab_power-4c0c61ab2aaa7554.d: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

/root/repo/target/release/deps/libolab_power-4c0c61ab2aaa7554.rlib: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

/root/repo/target/release/deps/libolab_power-4c0c61ab2aaa7554.rmeta: crates/power/src/lib.rs crates/power/src/sampler.rs crates/power/src/trace.rs

crates/power/src/lib.rs:
crates/power/src/sampler.rs:
crates/power/src/trace.rs:
