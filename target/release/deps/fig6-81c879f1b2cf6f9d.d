/root/repo/target/release/deps/fig6-81c879f1b2cf6f9d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-81c879f1b2cf6f9d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
