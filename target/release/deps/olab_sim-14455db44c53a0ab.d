/root/repo/target/release/deps/olab_sim-14455db44c53a0ab.d: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

/root/repo/target/release/deps/libolab_sim-14455db44c53a0ab.rlib: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

/root/repo/target/release/deps/libolab_sim-14455db44c53a0ab.rmeta: crates/sim/src/lib.rs crates/sim/src/critical.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/ids.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/verify.rs

crates/sim/src/lib.rs:
crates/sim/src/critical.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/ids.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/verify.rs:
