/root/repo/target/release/deps/fig8-4ead68f25a23050a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-4ead68f25a23050a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
