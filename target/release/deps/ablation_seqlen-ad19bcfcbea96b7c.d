/root/repo/target/release/deps/ablation_seqlen-ad19bcfcbea96b7c.d: crates/bench/src/bin/ablation_seqlen.rs

/root/repo/target/release/deps/ablation_seqlen-ad19bcfcbea96b7c: crates/bench/src/bin/ablation_seqlen.rs

crates/bench/src/bin/ablation_seqlen.rs:
