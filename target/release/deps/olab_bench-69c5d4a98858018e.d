/root/repo/target/release/deps/olab_bench-69c5d4a98858018e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolab_bench-69c5d4a98858018e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolab_bench-69c5d4a98858018e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
