/root/repo/target/release/deps/methodology-16826d01c839db09.d: crates/bench/src/bin/methodology.rs

/root/repo/target/release/deps/methodology-16826d01c839db09: crates/bench/src/bin/methodology.rs

crates/bench/src/bin/methodology.rs:
