//! Integration contract of the `olab-metrics` self-telemetry registry:
//! the deterministic section of both expositions is byte-identical
//! between a serial and a parallel sweep of the same grid, the JSON
//! exposition is well-formed, and every engine family is present once
//! the families have been touched — zeros included.
//!
//! Everything lives in one `#[test]` because the registry (and its
//! enable flag) is process-global: separate test threads would race on
//! `set_enabled`/`reset`.

use olab_core::fmtutil::validate_json;
use olab_core::{Experiment, Strategy, Sweep};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_sim::Workload;

/// The deterministic prefix of the Prometheus exposition — everything
/// above the wall-clock marker, exactly what CI extracts with `sed`.
fn prom_deterministic(prom: &str) -> String {
    prom.split("# ==== wall-clock")
        .next()
        .expect("split never yields zero pieces")
        .to_string()
}

/// The `"deterministic"` object of the JSON exposition, as raw text.
fn json_deterministic(json: &str) -> String {
    let start = json.find("\"deterministic\"").expect("deterministic key");
    let end = json.find("\"wall\"").expect("wall key");
    json[start..end].to_string()
}

fn grid() -> Vec<Experiment> {
    [4u64, 8, 16]
        .iter()
        .map(|&batch| {
            Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, batch)
                .with_seq(256)
        })
        .collect()
}

/// Runs the grid at the given worker count on a fresh engine and returns
/// both expositions, resetting recorded values (not registrations) first
/// so each run is counted from zero.
fn sweep_expositions(jobs: usize) -> (String, String) {
    olab_metrics::reset();
    let outcome = Sweep::new().with_jobs(jobs).run(&grid());
    assert!(
        outcome.cells.iter().all(Result::is_ok),
        "sweep cells must succeed"
    );
    (olab_metrics::render_prom(), olab_metrics::render_json())
}

#[test]
fn deterministic_metric_fields_are_identical_across_schedules() {
    olab_metrics::set_enabled(true);
    olab_core::fastpath::touch_metrics();

    let (serial_prom, serial_json) = sweep_expositions(1);
    let (parallel_prom, parallel_json) = sweep_expositions(8);

    // The determinism contract: cross-run families must not depend on the
    // worker count or schedule.
    assert_eq!(
        prom_deterministic(&serial_prom),
        prom_deterministic(&parallel_prom),
        "prom deterministic sections diverge between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        json_deterministic(&serial_json),
        json_deterministic(&parallel_json),
        "json deterministic sections diverge between --jobs 1 and --jobs 8"
    );

    // Both runs actually recorded: three cells simulated, attributed to a
    // route, and missed by the (fresh, memory-only) cache.
    for json in [&serial_json, &parallel_json] {
        validate_json(json).expect("exposition is well-formed JSON");
        assert!(json.contains("\"olab_sim_engine_runs_total\": 3"), "{json}");
        assert!(json.contains("\"olab_cache_misses_total\": 3"), "{json}");
    }

    // Family completeness: every engine family appears in the exposition
    // even when its path never ran (the guard saw no timeout, the disk
    // tier does not exist here).
    for family in [
        "olab_pool_tasks_total",
        "olab_pool_steals_total",
        "olab_pool_worker_busy_ns",
        "olab_guard_attempts_total",
        "olab_guard_timeouts_total",
        "olab_cache_memory_hits_total",
        "olab_cache_disk_hits_total",
        "olab_cache_quarantined_total",
        "olab_cache_evicted_total",
        "olab_cache_insert_ns",
        "olab_core_route_fast_lean_total",
        "olab_core_route_event_loop_full_total",
        "olab_core_cell_fast_lean_ns",
        "olab_sim_engine_runs_total",
        "olab_sim_arena_warm_resets_total",
        "olab_grid_cell_exec_ns",
    ] {
        assert!(serial_prom.contains(family), "prom lacks {family}");
        assert!(serial_json.contains(family), "json lacks {family}");
    }

    // Wall-clock families land after the marker, deterministic ones
    // before it.
    let det = prom_deterministic(&serial_prom);
    assert!(det.contains("olab_sim_engine_runs_total"));
    assert!(!det.contains("olab_pool_worker_busy_ns"));

    // Disabled again, recording becomes a no-op: the engine-run counter
    // stays frozen while a whole workload executes.
    olab_metrics::set_enabled(false);
    let frozen = olab_metrics::render_json();
    let mut w: Workload<()> = Workload::new(1);
    w.push(olab_sim::TaskSpec::compute("k0", olab_sim::GpuId(0), ()));
    olab_sim::Engine::new(olab_sim::ConstantRate::default())
        .run(&w)
        .expect("workload runs");
    assert_eq!(
        frozen,
        olab_metrics::render_json(),
        "a disabled registry must not move"
    );
}
