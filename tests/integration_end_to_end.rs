//! Cross-crate integration: full experiments on every SKU and strategy,
//! checking structural invariants of the three execution modes.

use olab_core::{execute, Experiment, Machine, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_parallel::ExecutionMode;

/// A fast experiment cell (small sequence keeps debug-mode runtimes low).
fn small(sku: SkuKind, strategy: Strategy) -> Experiment {
    Experiment::new(sku, 4, ModelPreset::Gpt3Xl, strategy, 8).with_seq(256)
}

#[test]
fn every_sku_runs_fsdp_and_pipeline() {
    for sku in SkuKind::ALL {
        for strategy in [Strategy::Fsdp, Strategy::Pipeline { microbatch_size: 2 }] {
            let r = small(sku, strategy)
                .run()
                .unwrap_or_else(|e| panic!("{sku} {strategy:?}: {e}"));
            assert!(r.metrics.e2e_overlapped_s > 0.0);
            assert!(
                r.metrics.e2e_overlapped_s <= r.metrics.e2e_sequential_measured_s,
                "{sku}: overlap must not lose to sequential"
            );
        }
    }
}

#[test]
fn overlap_ratio_is_a_valid_fraction_everywhere() {
    for sku in SkuKind::ALL {
        let r = small(sku, Strategy::Fsdp).run().unwrap();
        assert!((0.0..=1.0).contains(&r.metrics.overlap_ratio), "{sku}");
        assert!(r.metrics.compute_slowdown >= 0.0, "{sku}");
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = small(SkuKind::Mi250, Strategy::Fsdp).run().unwrap();
    let b = small(SkuKind::Mi250, Strategy::Fsdp).run().unwrap();
    assert_eq!(a.metrics.e2e_overlapped_s, b.metrics.e2e_overlapped_s);
    assert_eq!(a.metrics.compute_slowdown, b.metrics.compute_slowdown);
    assert_eq!(a.metrics.peak_power_w, b.metrics.peak_power_w);
}

#[test]
fn sequential_timeline_never_overlaps_on_any_gpu() {
    let exp = small(SkuKind::H100, Strategy::Fsdp);
    let policy = exp.validate().unwrap();
    let machine = exp.machine();
    let w = exp.timeline(ExecutionMode::Sequential, policy).unwrap();
    let run = execute(&w, &machine).unwrap();
    for (g, gpu) in run.gpus.iter().enumerate() {
        assert!(
            gpu.overlap_windows.is_empty(),
            "gpu{g} has overlap windows in sequential mode"
        );
        assert_eq!(gpu.overlapped_compute_s, 0.0, "gpu{g}");
    }
}

#[test]
fn uncontended_machine_matches_or_beats_contended_e2e() {
    let exp = small(SkuKind::Mi210, Strategy::Fsdp);
    let policy = exp.validate().unwrap();
    let machine = exp.machine();
    let w = exp.timeline(ExecutionMode::Overlapped, policy).unwrap();
    let contended = execute(&w, &machine).unwrap();
    let ideal = execute(&w, &machine.uncontended()).unwrap();
    assert!(ideal.e2e_s <= contended.e2e_s);
    assert!(ideal.compute_s() <= contended.compute_s());
}

#[test]
fn pipeline_uses_point_to_point_fsdp_uses_collectives() {
    let fsdp_exp = small(SkuKind::A100, Strategy::Fsdp);
    let pp_exp = small(SkuKind::A100, Strategy::Pipeline { microbatch_size: 2 });
    let fsdp_w = fsdp_exp
        .timeline(ExecutionMode::Overlapped, fsdp_exp.validate().unwrap())
        .unwrap();
    let pp_w = pp_exp
        .timeline(ExecutionMode::Overlapped, pp_exp.validate().unwrap())
        .unwrap();

    let comm_group_sizes = |w: &olab_sim::Workload<olab_parallel::Op>| -> Vec<usize> {
        w.tasks()
            .iter()
            .filter(|t| matches!(t.payload, olab_parallel::Op::Comm(_)))
            .map(|t| t.participants.len())
            .collect()
    };
    assert!(comm_group_sizes(&fsdp_w).iter().all(|&n| n == 4));
    assert!(comm_group_sizes(&pp_w).iter().all(|&n| n == 2));
}

#[test]
fn eight_gpu_nodes_work_like_four_gpu_nodes() {
    let exp =
        Experiment::new(SkuKind::H100, 8, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
    let r = exp.run().expect("8-GPU node runs");
    assert_eq!(r.overlapped.gpus.len(), 8);
    // More ranks shard the same model further: per-layer all-gathers move
    // (n-1)/n of the layer, so comm per rank grows slightly while compute
    // per rank stays constant (per-rank batch).
    assert!(r.metrics.overlap_ratio > 0.0);
}

#[test]
fn machine_debug_and_clone_are_usable() {
    // API ergonomics: Machine is Clone + Debug so harnesses can fan out.
    let m = Machine::stock(SkuKind::H100.sku(), 4);
    let m2 = m.clone();
    assert!(format!("{m2:?}").contains("Machine"));
}
