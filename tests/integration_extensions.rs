//! Integration tests for the extensions beyond the paper: tensor
//! parallelism, MoE all-to-all overlap, gradient accumulation, and the
//! adaptive overlap scheduler.

use olab_core::adaptive::{tune_fsdp, Objective};
use olab_core::{execute, Experiment, Machine, Strategy};
use olab_gpu::{Datapath, GpuSku, Precision, SkuKind};
use olab_models::ModelPreset;
use olab_parallel::{moe, ExecutionMode};

fn tp(sku: SkuKind) -> Experiment {
    Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::TensorParallel, 8).with_seq(512)
}

#[test]
fn tensor_parallel_runs_on_every_sku() {
    for sku in SkuKind::ALL {
        let r = tp(sku).run().unwrap_or_else(|e| panic!("{sku}: {e}"));
        assert!(r.metrics.e2e_overlapped_s > 0.0);
        assert!(
            r.metrics.e2e_overlapped_s <= r.metrics.e2e_sequential_measured_s + 1e-12,
            "{sku}"
        );
    }
}

#[test]
fn tensor_parallel_comm_scales_with_tokens_fsdp_comm_does_not() {
    // TP all-reduces activations (∝ batch·seq); FSDP moves parameters
    // (constant). Comparing 32 samples/iteration at seq 1024: TP moves more
    // bytes than FSDP; and quadrupling TP's batch roughly quadruples its
    // comm while FSDP's stays flat.
    let tp_32 = Experiment::new(
        SkuKind::H100,
        4,
        ModelPreset::Gpt3_2_7B,
        Strategy::TensorParallel,
        32,
    )
    .run()
    .unwrap();
    let fsdp_32 = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8)
        .run()
        .unwrap();
    assert!(
        tp_32.overlapped.comm_s() > 2.0 * fsdp_32.overlapped.comm_s(),
        "TP comm {} s vs FSDP comm {} s",
        tp_32.overlapped.comm_s(),
        fsdp_32.overlapped.comm_s()
    );

    let tp_8 = Experiment::new(
        SkuKind::H100,
        4,
        ModelPreset::Gpt3_2_7B,
        Strategy::TensorParallel,
        8,
    )
    .run()
    .unwrap();
    let growth = tp_32.overlapped.comm_s() / tp_8.overlapped.comm_s();
    assert!((2.5..4.5).contains(&growth), "TP comm growth {growth}");
}

#[test]
fn tensor_parallel_backward_overlaps_wgrads() {
    // The backward input-gradient all-reduces hide under wgrad GEMMs, so
    // TP has a nonzero overlap ratio despite exposed forward all-reduces.
    let r = tp(SkuKind::H100).run().unwrap();
    assert!(
        r.metrics.overlap_ratio > 0.03,
        "got {}",
        r.metrics.overlap_ratio
    );
}

#[test]
fn moe_chunking_reduces_e2e_on_slow_fabrics() {
    let sku = GpuSku::mi250();
    let machine = Machine::stock(sku.clone(), 4);
    let topo = machine.config().topology.clone();
    let run = |chunks: u32| {
        let plan = moe::MoePlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 4,
            seq: 512,
            experts: 8,
            moe_every: 2,
            chunks,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
        };
        let w = moe::moe_timeline(&plan, &sku, &topo, ExecutionMode::Overlapped);
        execute(&w, &machine).expect("moe runs")
    };
    let unchunked = run(1);
    let chunked = run(4);
    assert!(
        chunked.e2e_s < unchunked.e2e_s,
        "chunking should hide all-to-alls: {} vs {}",
        chunked.e2e_s,
        unchunked.e2e_s
    );
    assert!(chunked.hidden_comm_s() > unchunked.hidden_comm_s());
}

#[test]
fn gradient_accumulation_cuts_reduce_traffic() {
    let base =
        Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(512);
    let plain = base.clone().run().unwrap();
    let accum = base.with_grad_accum(2).run().unwrap();
    // Two micro-steps double the compute but keep one reduce-scatter pass:
    // total comm grows by less than 2x.
    assert!(accum.overlapped.compute_s() > 1.8 * plain.overlapped.compute_s());
    assert!(accum.overlapped.comm_s() < 1.8 * plain.overlapped.comm_s());
}

#[test]
fn adaptive_scheduler_latency_choice_is_never_worse_than_default() {
    for sku in [SkuKind::H100, SkuKind::Mi250] {
        let exp = Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
        let choice = tune_fsdp(&exp, Objective::Latency).unwrap();
        let default_report = exp.run().unwrap();
        assert!(
            choice.best().report.metrics.e2e_overlapped_s
                <= default_report.metrics.e2e_overlapped_s + 1e-9,
            "{sku}"
        );
    }
}

#[test]
fn adaptive_energy_choice_saves_energy_on_mi250() {
    let exp =
        Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
    let choice = tune_fsdp(&exp, Objective::Energy).unwrap();
    assert!(
        choice.gain_over_default() > 0.02,
        "expected >2% energy gain from serialization, got {}",
        choice.gain_over_default()
    );
}

#[test]
fn tp_head_divisibility_is_enforced() {
    // 3 GPUs cannot split 32 heads.
    let exp = Experiment::new(
        SkuKind::H100,
        3,
        ModelPreset::Gpt3Xl,
        Strategy::TensorParallel,
        8,
    )
    .with_seq(256);
    let result = std::panic::catch_unwind(|| exp.run());
    assert!(result.is_err(), "indivisible heads must be rejected");
}
