//! Cross-crate integration of the `olab-grid` sweep engine: parallel
//! execution is bit-identical to serial, warm caches re-simulate nothing,
//! and cache keys cover the full cell configuration.

use olab_core::sweep::{cell_descriptor, cell_descriptor_versioned, cell_key, CELL_SCHEMA_VERSION};
use olab_core::{registry, Experiment, Strategy, Sweep};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

/// The paper's main grid, shrunk to a fast sequence length so the full
/// 160-cell sweep stays debug-mode friendly. Cell structure (every SKU ×
/// model × strategy × batch, including the infeasible A100 cells) is
/// unchanged.
fn fast_main_grid() -> Vec<Experiment> {
    registry::main_grid()
        .into_iter()
        .map(|e| e.with_seq(256))
        .collect()
}

#[test]
fn parallel_main_grid_is_bit_identical_to_serial() {
    let grid = fast_main_grid();
    let serial = Sweep::new().with_jobs(1).run(&grid);
    let parallel = Sweep::new().with_jobs(4).run(&grid);
    assert_eq!(serial.cells.len(), grid.len());
    assert_eq!(parallel.cells.len(), grid.len());
    for (i, (s, p)) in serial.cells.iter().zip(&parallel.cells).enumerate() {
        match (s, p) {
            (Ok(a), Ok(b)) => {
                // Bit-level equality, not approximate: the simulator is
                // deterministic and the pool must not perturb it.
                let pairs = [
                    (a.metrics.e2e_overlapped_s, b.metrics.e2e_overlapped_s),
                    (a.metrics.e2e_ideal_s, b.metrics.e2e_ideal_s),
                    (
                        a.metrics.e2e_sequential_measured_s,
                        b.metrics.e2e_sequential_measured_s,
                    ),
                    (a.metrics.compute_slowdown, b.metrics.compute_slowdown),
                    (a.metrics.overlap_ratio, b.metrics.overlap_ratio),
                    (a.metrics.avg_power_w, b.metrics.avg_power_w),
                    (a.metrics.peak_power_w, b.metrics.peak_power_w),
                    (a.metrics.energy_j, b.metrics.energy_j),
                    (a.sampled_avg_w, b.sampled_avg_w),
                    (a.sampled_peak_w, b.sampled_peak_w),
                    (a.comm_s, b.comm_s),
                    (a.overlapped_compute_s, b.overlapped_compute_s),
                    (a.hidden_comm_s, b.hidden_comm_s),
                ];
                for (x, y) in pairs {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "cell {i} ({}): serial {x} != parallel {y}",
                        grid[i].label()
                    );
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "cell {i}"),
            (s, p) => panic!("cell {i}: serial {s:?} vs parallel {p:?}"),
        }
    }
}

#[test]
fn warm_cache_rerun_simulates_nothing() {
    let grid = fast_main_grid();
    let sweep = Sweep::new().with_jobs(4);

    let cold = sweep.run(&grid);
    assert_eq!(cold.stats.simulated, grid.len(), "cold run simulates all");
    assert_eq!(cold.stats.cache_hits(), 0);

    let warm = sweep.run(&grid);
    assert_eq!(warm.stats.simulated, 0, "warm run simulates nothing");
    assert_eq!(warm.stats.memory_hits, grid.len());
    assert_eq!(warm.stats.hit_rate(), 1.0);
    assert_eq!(cold.cells, warm.cells, "cached outcomes are identical");

    // Infeasible cells (the paper's missing bars) are cached too — the
    // warm pass served them without re-validating.
    assert!(
        cold.cells.iter().any(|c| c.is_err()),
        "main grid has infeasible cells"
    );
}

#[test]
fn disk_cache_survives_engine_restarts() {
    let dir = std::env::temp_dir().join(format!("olab-grid-itest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cell =
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
    let grid = vec![cell];

    let first = Sweep::new()
        .with_jobs(2)
        .with_disk_cache(&dir)
        .expect("cache dir creatable");
    let cold = first.run(&grid);
    assert_eq!(cold.stats.simulated, 1);

    // A fresh engine (empty memory tier) must hit the disk tier.
    let second = Sweep::new()
        .with_jobs(2)
        .with_disk_cache(&dir)
        .expect("cache dir reusable");
    let warm = second.run(&grid);
    assert_eq!(warm.stats.simulated, 0, "disk hit, no simulation");
    assert_eq!(warm.stats.disk_hits, 1);
    assert_eq!(cold.cells, warm.cells);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_keys_are_stable_and_version_sensitive() {
    let cell = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8);
    // Stable: the same configuration always hashes to the same key.
    assert_eq!(cell_key(&cell), cell_key(&cell.clone()));
    // Sensitive: any configuration change produces a different key …
    assert_ne!(cell_key(&cell), cell_key(&cell.clone().with_seq(512)));
    // … and so does a calibration-constant bump, invalidating stale
    // results cached by older builds.
    let current = cell_descriptor(&cell);
    let bumped = cell_descriptor_versioned(
        &cell,
        CELL_SCHEMA_VERSION,
        olab_gpu::CALIBRATION_VERSION + 1,
    );
    assert_ne!(current, bumped);
}

#[test]
fn run_n_is_deterministic_and_seed_ordered() {
    let cell =
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
    let a = cell.run_n(4, 0.05).expect("jittered runs succeed");
    let b = cell.run_n(4, 0.05).expect("jittered runs succeed");
    assert_eq!(a.runs.len(), 4);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(
            x.e2e_overlapped_s.to_bits(),
            y.e2e_overlapped_s.to_bits(),
            "per-seed results must be reproducible across parallel runs"
        );
    }
    // Different seeds actually differ (the jitter is applied per seed).
    assert!(
        a.runs
            .iter()
            .any(|r| r.e2e_overlapped_s.to_bits() != a.runs[0].e2e_overlapped_s.to_bits()),
        "jitter must vary across seeds"
    );
}
