//! Grid cache-key stability.
//!
//! The sweep cache is content-addressed: the key is a hash of a versioned
//! textual descriptor of the cell configuration, and *nothing else* — in
//! particular not the execution path (event loop vs analytic fast path),
//! which both produce the same answers. These tests pin that contract
//! three ways:
//!
//! * a **golden vector**: the exact descriptor string and FNV-1a key of a
//!   fixed cell under fixed schema/calibration versions. If this test
//!   fails, the descriptor format changed — which silently invalidates (or
//!   worse, aliases) every existing on-disk cache. Bump
//!   [`CELL_SCHEMA_VERSION`](olab_core::sweep::CELL_SCHEMA_VERSION) instead
//!   of editing the format in place, then re-pin here;
//! * **path independence**: toggling the fast-path switch does not move
//!   the key;
//! * **attribution**: `SweepStats::fast_path` (not the key) is what
//!   records which path served the cells, and the two paths' metrics
//!   agree.

use olab_core::sweep::{cell_descriptor_versioned, cell_key};
use olab_core::{fastpath, Experiment, Strategy, Sweep};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use std::sync::Mutex;

/// The fast-path switch is process-wide; tests that toggle it serialize
/// here and restore the default.
static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    fastpath::set_enabled(true);
    g
}

fn golden_cell() -> Experiment {
    Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
}

#[test]
fn descriptor_and_key_match_the_golden_vector() {
    // Fixed versions, NOT the live ones: this pins the *format*, and must
    // keep passing when CELL_SCHEMA_VERSION or CALIBRATION_VERSION bump.
    let descriptor = cell_descriptor_versioned(&golden_cell(), 1, 1);
    assert_eq!(descriptor, GOLDEN_DESCRIPTOR, "descriptor format changed");
    assert_eq!(
        olab_grid::fnv1a_64(descriptor.as_bytes()),
        GOLDEN_KEY,
        "descriptor hash changed"
    );
}

const GOLDEN_DESCRIPTOR: &str = "olab-cell schema=1 calib=1 sku=H100 gpus=4 model=Gpt3Xl \
     strategy=Fsdp batch=8 seq=256 precision=Fp16 datapath=TensorCore power_cap=None \
     freq_cap=None schedule=OneFOneB grad_accum=1 fsdp_overlap=FsdpOverlap { \
     prefetch_all_gather: true, overlap_reduce_scatter: true }";
const GOLDEN_KEY: u64 = 0x06ac_15d7_ee86_ad91;

#[test]
fn cell_key_is_execution_path_independent() {
    let _g = locked();
    let exp = golden_cell();
    fastpath::set_enabled(true);
    let enabled_key = cell_key(&exp);
    fastpath::set_enabled(false);
    let disabled_key = cell_key(&exp);
    fastpath::set_enabled(true);
    assert_eq!(enabled_key, disabled_key);
}

#[test]
fn sweep_stats_attribute_the_path_and_paths_agree() {
    let _g = locked();
    let cells = vec![
        Experiment::new(SkuKind::H100, 2, ModelPreset::Gpt3Xl, Strategy::Fsdp, 4).with_seq(64),
        Experiment::new(SkuKind::A100, 2, ModelPreset::Gpt3Xl, Strategy::Fsdp, 4).with_seq(64),
    ];

    fastpath::set_enabled(true);
    let fast = Sweep::new().run(&cells);
    assert!(
        fast.stats.fast_path > 0,
        "eligible cells must be attributed to the fast path"
    );

    fastpath::set_enabled(false);
    let reference = Sweep::new().run(&cells);
    fastpath::set_enabled(true);
    assert_eq!(
        reference.stats.fast_path, 0,
        "switch off, nothing attributed"
    );

    for (f, r) in fast.cells.iter().zip(&reference.cells) {
        let f = f.as_ref().expect("cell simulates");
        let r = r.as_ref().expect("cell simulates");
        for (a, b) in [
            (f.metrics.e2e_overlapped_s, r.metrics.e2e_overlapped_s),
            (
                f.metrics.e2e_sequential_measured_s,
                r.metrics.e2e_sequential_measured_s,
            ),
            (f.metrics.overlap_ratio, r.metrics.overlap_ratio),
        ] {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-9),
                "paths disagree: {a} vs {b}"
            );
        }
    }
}
