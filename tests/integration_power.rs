//! Integration tests of power telemetry on full training iterations:
//! trace structure, sampler effects, and the Fig. 7 anatomy.

use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_power::Sampler;

fn mi250_report() -> olab_core::ExperimentReport {
    Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8)
        .with_seq(512)
        .run()
        .expect("experiment runs")
}

#[test]
fn power_traces_cover_the_whole_iteration() {
    let r = mi250_report();
    for gpu in &r.overlapped.gpus {
        assert!((gpu.power.duration_s() - r.overlapped.e2e_s).abs() < 1e-9);
    }
}

#[test]
fn power_never_drops_below_idle_or_exceeds_max_draw() {
    let r = mi250_report();
    let sku = SkuKind::Mi250.sku();
    let profile = sku.power();
    for gpu in &r.overlapped.gpus {
        let fine = gpu.power.sample(Sampler::rocm_smi_fine());
        for s in &fine.samples {
            assert!(s.watts >= profile.idle_w - 1e-6, "sample {} W", s.watts);
            assert!(s.watts <= profile.max_draw() + 1e-6, "sample {} W", s.watts);
        }
    }
}

#[test]
fn overlap_windows_contain_the_power_spikes() {
    // Fig. 7's point: the highest spikes coincide with overlap regions.
    let r = mi250_report();
    let gpu = &r.overlapped.gpus[0];
    assert!(
        !gpu.overlap_windows.is_empty(),
        "overlapped FSDP must have overlap windows"
    );
    let peak_overall = gpu.power.peak_instantaneous();
    let peak_in_overlap = gpu
        .overlap_windows
        .iter()
        .map(|&(a, b)| gpu.power.peak_over(a, b))
        .fold(0.0, f64::max);
    assert!(
        (peak_in_overlap - peak_overall).abs() < 1e-6,
        "global peak {peak_overall} W should occur inside an overlap window \
         (best in-window peak {peak_in_overlap} W)"
    );
}

#[test]
fn coarse_samplers_underreport_peaks() {
    // Why the paper's Fig. 7 uses the MI250: 1 ms sampling preserves spikes
    // that NVML's 100 ms averaging flattens.
    let r = mi250_report();
    let gpu = &r.overlapped.gpus[0];
    let fine = gpu.power.sample(Sampler::rocm_smi_fine()).peak().unwrap();
    let coarse = gpu.power.sample(Sampler::nvml()).peak().unwrap();
    assert!(
        fine >= coarse,
        "1 ms peak {fine} W must be >= 100 ms peak {coarse} W"
    );
}

#[test]
fn all_samplers_agree_on_average_power() {
    let r = mi250_report();
    let gpu = &r.overlapped.gpus[0];
    let exact = gpu.power.average();
    for sampler in [
        Sampler::nvml(),
        Sampler::amd_smi(),
        Sampler::rocm_smi_fine(),
    ] {
        let avg = gpu.power.sample(sampler).average().unwrap();
        // Window-averaged readings conserve energy up to the ragged final
        // window.
        assert!(
            (avg / exact - 1.0).abs() < 0.05,
            "{sampler}: {avg} vs exact {exact}"
        );
    }
}

#[test]
fn amd_peak_power_exceeds_nvidia_relative_to_tdp_under_overlap() {
    // The MI250's heavier contention shows up as hotter overlap phases.
    let mi = mi250_report();
    let mi_ratio = mi.metrics.peak_power_w / mi.tdp_w();
    assert!(
        mi_ratio > 0.9,
        "MI250 peak should approach TDP, got {mi_ratio}"
    );
}

#[test]
fn overlap_energy_depends_on_contention_severity() {
    // On lightly-contended fabrics (H100) overlap wins on energy: the
    // iteration is shorter at similar power. On the heavily-contended
    // MI250, the stretched compute runs near peak power for longer, and
    // overlap can *cost* energy — the flip side of the paper's takeaway 6.
    let h100 = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8)
        .with_seq(512)
        .run()
        .unwrap();
    // Energies land within a few percent of each other: the shorter
    // iteration and the contention-inflated compute nearly cancel.
    let h_ratio = h100.overlapped.energy_j() / h100.sequential.energy_j();
    assert!((0.9..1.1).contains(&h_ratio), "H100 energy ratio {h_ratio}");
    // The robust signal is *power density*: the same work in less wall
    // time means overlap always raises average power.
    assert!(h100.metrics.avg_power_w > h100.metrics.avg_power_sequential_w);

    let mi250 = mi250_report();
    let ratio = mi250.overlapped.energy_j() / mi250.sequential.energy_j();
    assert!(
        ratio > 1.0,
        "on the heavily-contended MI250, overlap costs extra energy \
         (stretched compute near peak power); got ratio {ratio}"
    );
    assert!(mi250.metrics.avg_power_w > mi250.metrics.avg_power_sequential_w);
}
