//! Integration tests of the paper's metric derivations (Eqs. 1–5) against
//! directly simulated quantities.

use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn report(sku: SkuKind) -> olab_core::ExperimentReport {
    Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8)
        .with_seq(256)
        .run()
        .expect("experiment runs")
}

#[test]
fn eq1_compute_slowdown_matches_raw_sums() {
    let r = report(SkuKind::Mi250);
    let ovl = r.overlapped.compute_s();
    let seq = r.sequential.compute_s();
    let expected = (ovl - seq) / seq;
    assert!((r.metrics.compute_slowdown - expected).abs() < 1e-12);
}

#[test]
fn eq2_overlap_ratio_matches_coactive_fraction() {
    let r = report(SkuKind::H100);
    let expected = r.overlapped.overlapped_compute_s() / r.overlapped.compute_s();
    assert!((r.metrics.overlap_ratio - expected).abs() < 1e-12);
}

#[test]
fn eq4_ideal_is_overlapped_minus_compute_inflation() {
    let r = report(SkuKind::Mi210);
    let n = r.overlapped.gpus.len() as f64;
    let inflation = (r.overlapped.compute_s() - r.sequential.compute_s()) / n;
    let expected = r.metrics.e2e_overlapped_s - inflation;
    assert!((r.metrics.e2e_ideal_s - expected).abs() < 1e-9);
}

#[test]
fn eq5_derived_sequential_tracks_measured_sequential() {
    // The paper derives E2E_sequential from the overlapped run (Eq. 5); we
    // can also measure it. The two must agree to first order on every SKU.
    for sku in SkuKind::ALL {
        let r = report(sku);
        let ratio = r.metrics.e2e_sequential_derived_s / r.metrics.e2e_sequential_measured_s;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{sku}: derived/measured = {ratio}"
        );
    }
}

#[test]
fn eq4_ideal_tracks_contention_free_simulation() {
    // Eq. 4 assumes the overlapped run hides communication completely; on
    // fabrics where collectives are longer than the compute they hide under
    // (the MI250), the derivation *under*-estimates the true contention-free
    // time. The simulator exposes this approximation error — the two still
    // agree within ~30%, and Eq. 4 is never *above* the simulated ideal by
    // more than the launch-overhead noise.
    for sku in SkuKind::ALL {
        let r = report(sku);
        let ratio = r.metrics.e2e_ideal_s / r.ideal_simulated_e2e_s;
        assert!(
            (0.7..1.1).contains(&ratio),
            "{sku}: Eq.4 ideal {} vs simulated ideal {}",
            r.metrics.e2e_ideal_s,
            r.ideal_simulated_e2e_s
        );
    }
}

#[test]
fn e2e_ordering_holds_on_every_sku() {
    for sku in SkuKind::ALL {
        let r = report(sku);
        assert!(
            r.metrics.e2e_ideal_s <= r.metrics.e2e_overlapped_s + 1e-12,
            "{sku}"
        );
        assert!(
            r.metrics.e2e_overlapped_s <= r.metrics.e2e_sequential_measured_s + 1e-12,
            "{sku}"
        );
    }
}

#[test]
fn makespan_is_bounded_by_stream_sums() {
    let r = report(SkuKind::A100);
    for run in [&r.overlapped, &r.sequential] {
        for gpu in &run.gpus {
            // A GPU cannot be busy longer than the iteration.
            assert!(gpu.compute_s <= run.e2e_s + 1e-9);
            // And the iteration cannot exceed everything serialized.
            assert!(run.e2e_s <= r.overlapped.compute_s() + r.overlapped.comm_s() + 1.0);
        }
    }
}

#[test]
fn hidden_comm_never_exceeds_total_comm() {
    for sku in SkuKind::ALL {
        let r = report(sku);
        assert!(
            r.overlapped.hidden_comm_s() <= r.overlapped.comm_s() + 1e-9,
            "{sku}"
        );
    }
}

#[test]
fn energy_is_consistent_with_average_power() {
    let r = report(SkuKind::H100);
    let n = r.overlapped.gpus.len() as f64;
    let implied = r.metrics.avg_power_w * n * r.metrics.e2e_overlapped_s;
    let ratio = r.metrics.energy_j / implied;
    assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
}
