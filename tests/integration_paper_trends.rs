//! The paper's seven takeaways, as executable assertions. Each test states
//! the takeaway it verifies (Section V of the paper).

use olab_core::{Experiment, ExperimentError, Strategy};
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;

fn fsdp(sku: SkuKind, model: ModelPreset, batch: u64) -> Experiment {
    Experiment::new(sku, 4, model, Strategy::Fsdp, batch).with_seq(512)
}

fn pp(sku: SkuKind, model: ModelPreset, batch: u64) -> Experiment {
    Experiment::new(
        sku,
        4,
        model,
        Strategy::Pipeline { microbatch_size: 4 },
        batch,
    )
    .with_seq(512)
}

/// Takeaway 1: strategies with complex collectives (FSDP) overlap more and
/// slow compute more than send/recv-based pipeline parallelism.
#[test]
fn takeaway1_fsdp_slows_compute_more_than_pipeline() {
    for sku in [SkuKind::H100, SkuKind::Mi210] {
        let f = fsdp(sku, ModelPreset::Gpt3Xl, 8).run().unwrap();
        let p = pp(sku, ModelPreset::Gpt3Xl, 16).run().unwrap();
        assert!(
            f.metrics.compute_slowdown > p.metrics.compute_slowdown,
            "{sku}: FSDP {} vs PP {}",
            f.metrics.compute_slowdown,
            p.metrics.compute_slowdown
        );
        assert!(f.metrics.overlap_ratio > p.metrics.overlap_ratio, "{sku}");
    }
}

/// Section V-A: in FSDP larger batches dilute the overlap region (compute
/// scales, communication does not), reducing slowdown.
#[test]
fn fsdp_slowdown_decreases_with_batch_size() {
    let s8 = fsdp(SkuKind::Mi250, ModelPreset::Gpt3Xl, 8).run().unwrap();
    let s32 = fsdp(SkuKind::Mi250, ModelPreset::Gpt3Xl, 32).run().unwrap();
    assert!(
        s8.metrics.compute_slowdown > s32.metrics.compute_slowdown,
        "b8 {} must exceed b32 {}",
        s8.metrics.compute_slowdown,
        s32.metrics.compute_slowdown
    );
}

/// Section V-A: pipeline parallelism shows the opposite batch trend — more
/// microbatches mean a longer steady state with send/recv in flight.
#[test]
fn pipeline_overlap_grows_with_batch_size() {
    let b8 = pp(SkuKind::A100, ModelPreset::Gpt3_2_7B, 8).run().unwrap();
    let b64 = pp(SkuKind::A100, ModelPreset::Gpt3_2_7B, 64).run().unwrap();
    assert!(
        b64.metrics.overlap_ratio > b8.metrics.overlap_ratio,
        "b64 {} must exceed b8 {}",
        b64.metrics.overlap_ratio,
        b8.metrics.overlap_ratio
    );
}

/// Section V-A: the MI250 shows the largest slowdowns, the A100 the
/// smallest (it only fits small models).
#[test]
fn per_sku_slowdown_ordering_matches_the_paper() {
    let slowdown = |sku| {
        fsdp(sku, ModelPreset::Gpt3Xl, 8)
            .run()
            .unwrap()
            .metrics
            .compute_slowdown
    };
    let a100 = slowdown(SkuKind::A100);
    let h100 = slowdown(SkuKind::H100);
    let mi210 = slowdown(SkuKind::Mi210);
    let mi250 = slowdown(SkuKind::Mi250);
    assert!(mi250 > mi210, "MI250 {mi250} > MI210 {mi210}");
    assert!(mi210 > h100, "MI210 {mi210} > H100 {h100}");
    assert!(h100 > a100 * 0.9, "H100 {h100} >~ A100 {a100}");
}

/// Section V-A: the A100's 40 GB gate it to GPT-3 2.7B under FSDP — the
/// missing bars of Fig. 4.
#[test]
fn memory_gates_match_the_paper() {
    // Capacity gating uses the paper's configuration (seq 1024).
    let at = |sku: SkuKind, model: ModelPreset| {
        Experiment::new(sku, 4, model, Strategy::Fsdp, 8).validate()
    };
    assert!(at(SkuKind::A100, ModelPreset::Gpt3_2_7B).is_ok());
    assert!(matches!(
        at(SkuKind::A100, ModelPreset::Gpt3_6_7B),
        Err(ExperimentError::OutOfMemory { .. })
    ));
    assert!(at(SkuKind::Mi210, ModelPreset::Gpt3_6_7B).is_ok());
    assert!(at(SkuKind::Mi210, ModelPreset::Gpt3_13B).is_err());
    assert!(at(SkuKind::H100, ModelPreset::Gpt3_13B).is_ok());
    assert!(at(SkuKind::Mi250, ModelPreset::Llama2_13B).is_ok());
}

/// Takeaway 3: overlapping hides communication (beats sequential) but
/// cannot reach the ideal.
#[test]
fn takeaway3_overlap_between_ideal_and_sequential() {
    let r = fsdp(SkuKind::Mi250, ModelPreset::Gpt3_2_7B, 8)
        .run()
        .unwrap();
    assert!(r.metrics.e2e_ideal_s < r.metrics.e2e_overlapped_s);
    assert!(r.metrics.e2e_overlapped_s < r.metrics.e2e_sequential_measured_s);
    assert!(r.metrics.overlap_vs_ideal() > 0.01);
}

/// Takeaway 4: overlapping raises peak power versus sequential execution.
#[test]
fn takeaway4_overlap_raises_peak_power() {
    for sku in [SkuKind::H100, SkuKind::Mi250] {
        let r = fsdp(sku, ModelPreset::Gpt3_2_7B, 8).run().unwrap();
        assert!(
            r.metrics.peak_power_w > r.metrics.peak_power_sequential_w,
            "{sku}: {} vs {}",
            r.metrics.peak_power_w,
            r.metrics.peak_power_sequential_w
        );
    }
}

/// Takeaway 5: strict power caps amplify slowdowns; the 100 W A100 cap
/// roughly doubles iteration time (the paper reports up to 107%).
#[test]
fn takeaway5_power_caps_amplify_slowdowns() {
    let stock = fsdp(SkuKind::A100, ModelPreset::Gpt3_2_7B, 8)
        .run()
        .unwrap();
    let capped = fsdp(SkuKind::A100, ModelPreset::Gpt3_2_7B, 8)
        .with_power_cap(100.0)
        .run()
        .unwrap();
    let slowdown = capped.metrics.e2e_overlapped_s / stock.metrics.e2e_overlapped_s - 1.0;
    assert!(
        (0.7..1.4).contains(&slowdown),
        "100 W slowdown should be near the paper's ~107%, got {slowdown}"
    );
    // Decreasing caps monotonically increase latency.
    let mid = fsdp(SkuKind::A100, ModelPreset::Gpt3_2_7B, 8)
        .with_power_cap(200.0)
        .run()
        .unwrap();
    assert!(mid.metrics.e2e_overlapped_s < capped.metrics.e2e_overlapped_s);
    assert!(stock.metrics.e2e_overlapped_s < mid.metrics.e2e_overlapped_s);
}

/// Takeaway 7 (Fig. 10): FP16 raises overlap ratios and slowdowns relative
/// to FP32 (compute shrinks, communication stays), while cutting E2E time.
#[test]
fn takeaway7_fp16_increases_overlap_and_slowdown() {
    let fp32 = fsdp(SkuKind::H100, ModelPreset::Gpt3_2_7B, 8)
        .with_precision(Precision::Fp32)
        .with_datapath(Datapath::Vector)
        .run()
        .unwrap();
    let fp16 = fsdp(SkuKind::H100, ModelPreset::Gpt3_2_7B, 8)
        .run()
        .unwrap();
    assert!(fp16.metrics.overlap_ratio > fp32.metrics.overlap_ratio);
    assert!(fp16.metrics.compute_slowdown > fp32.metrics.compute_slowdown);
    assert!(fp16.metrics.e2e_overlapped_s < fp32.metrics.e2e_overlapped_s);
    // Fig. 10's power story at scale: the fast datapath runs hotter.
    assert!(fp16.metrics.peak_power_w > fp32.metrics.peak_power_w);
}

/// Takeaway 7 (Fig. 11): TF32 tensor cores accelerate FP32 training but
/// intensify contention the same way FP16 does.
#[test]
fn takeaway7_tensor_cores_trade_speed_for_contention() {
    let vector = fsdp(SkuKind::H100, ModelPreset::Gpt3_2_7B, 8)
        .with_precision(Precision::Fp32)
        .with_datapath(Datapath::Vector)
        .run()
        .unwrap();
    let tensor = fsdp(SkuKind::H100, ModelPreset::Gpt3_2_7B, 8)
        .with_precision(Precision::Tf32)
        .with_datapath(Datapath::TensorCore)
        .run()
        .unwrap();
    assert!(tensor.metrics.e2e_overlapped_s < vector.metrics.e2e_overlapped_s / 2.0);
    assert!(tensor.metrics.compute_slowdown > vector.metrics.compute_slowdown);
    assert!(tensor.metrics.peak_power_w > vector.metrics.peak_power_w);
}
